package experiments

import (
	"fmt"
	"math"

	"pgss/internal/profile"
	"pgss/internal/stats"
)

// changePoint is one consecutive-window observation of the threshold
// analysis: the BBV change (angle, radians) and the IPC change in units of
// the benchmark's interval-IPC standard deviation (Fig 6's axes).
type changePoint struct {
	BBVAngle float64
	IPCSigma float64
}

// changeSeries computes the consecutive-sample changes of one benchmark at
// granularity gran (the paper uses 100k-op samples for Figs 7–9).
func changeSeries(p *profile.Profile, gran uint64) ([]changePoint, error) {
	ipcs, err := p.IPCSeries(gran)
	if err != nil {
		return nil, err
	}
	bbvs, err := p.BBVSeries(gran)
	if err != nil {
		return nil, err
	}
	n := p.NumFullWindows(gran) // exclude the trailing partial window
	if len(ipcs) < n {
		n = len(ipcs)
	}
	if len(bbvs) < n {
		n = len(bbvs)
	}
	sigma, err := p.IntervalStdDev(gran)
	if err != nil {
		return nil, err
	}
	if sigma == 0 {
		sigma = math.Inf(1) // flat benchmark: all IPC changes are 0σ
	}
	var out []changePoint
	for i := 1; i < n; i++ {
		out = append(out, changePoint{
			BBVAngle: bbvs[i].Angle(bbvs[i-1]),
			IPCSigma: math.Abs(ipcs[i]-ipcs[i-1]) / sigma,
		})
	}
	return out, nil
}

// analysisGran is the Fig 7–9 sample size (paper: 100k ops).
func analysisGran(s *Suite) uint64 {
	g := 100_000 / s.Scale()
	if g < 10_000 {
		g = 10_000
	}
	return g
}

// Fig7 regenerates Figure 7: the two-dimensional distribution of IPC
// change (in σ units) versus BBV change (angle) between consecutive
// samples across the ten benchmarks, each benchmark weighted equally.
func Fig7(s *Suite) (*Report, error) {
	profiles, err := s.PaperTen()
	if err != nil {
		return nil, err
	}
	gran := analysisGran(s)
	r := NewReport("fig7", fmt.Sprintf(
		"2-D distribution of IPC vs BBV changes between %d-op samples, 10 benchmarks", gran))

	const xbins, ybins = 10, 8 // x: BBV change 0..0.5π, y: IPC change 0..0.8σ
	grid := make([][]float64, ybins)
	for y := range grid {
		grid[y] = make([]float64, xbins)
	}
	for _, p := range profiles {
		pts, err := changeSeries(p, gran)
		if err != nil {
			return nil, err
		}
		if len(pts) == 0 {
			continue
		}
		w := 1.0 / float64(len(pts)) // equal benchmark weighting
		for _, pt := range pts {
			x := int(pt.BBVAngle / (0.5 * math.Pi) * xbins)
			if x >= xbins {
				x = xbins - 1
			}
			y := int(pt.IPCSigma / 0.8 * ybins)
			if y >= ybins {
				y = ybins - 1
			}
			grid[y][x] += w
		}
	}
	total := 0.0
	for _, row := range grid {
		for _, v := range row {
			total += v
		}
	}

	t := r.AddTable("share of samples (%), rows = IPC change (σ), cols = BBV change (×π)",
		append([]string{"ipcΔ\\bbvΔ"}, func() []string {
			h := make([]string, xbins)
			for x := range h {
				h[x] = fmt.Sprintf(".%02d–.%02d", x*5, (x+1)*5)
			}
			return h
		}()...)...)
	for y := ybins - 1; y >= 0; y-- {
		row := make([]string, xbins+1)
		row[0] = fmt.Sprintf("%.1f–%.1fσ", float64(y)*0.1, float64(y+1)*0.1)
		for x := 0; x < xbins; x++ {
			row[x+1] = fmt.Sprintf("%.2f", grid[y][x]/total*100)
		}
		t.AddRow(row...)
	}

	// Headline: large IPC changes concentrate at BBV changes above ~.05π.
	var bigIPCLowBBV, bigIPCHighBBV float64
	for y := 2; y < ybins; y++ { // IPC change ≥ 0.2σ
		bigIPCLowBBV += grid[y][0]
		for x := 1; x < xbins; x++ {
			bigIPCHighBBV += grid[y][x]
		}
	}
	if s := bigIPCLowBBV + bigIPCHighBBV; s > 0 {
		r.Metrics["large_ipc_changes_above_.05pi_pct"] = bigIPCHighBBV / s * 100
		r.Notef("%.1f%% of ≥0.2σ IPC changes coincide with BBV changes above .05π (paper: BBV changes >≈.05π typically correspond to large IPC changes)",
			bigIPCHighBBV/s*100)
	}
	return r, nil
}

// thresholdSweep is the x-axis of Figs 8 and 9 (fractions of π).
func thresholdSweep() []float64 {
	var out []float64
	for th := 0.01; th <= 0.50001; th += 0.01 {
		out = append(out, th)
	}
	return out
}

// sigmaLevels are the IPC-change magnitudes of Figs 8 and 9.
func sigmaLevels() []float64 { return []float64{0.1, 0.2, 0.3, 0.4, 0.5} }

// changeSeriesAll precomputes the per-benchmark change series once, so the
// threshold sweeps of Figs 8 and 9 do not recompute them per (th, level)
// point.
func changeSeriesAll(profiles []*profile.Profile, gran uint64) ([][]changePoint, error) {
	out := make([][]changePoint, len(profiles))
	for i, p := range profiles {
		pts, err := changeSeries(p, gran)
		if err != nil {
			return nil, err
		}
		out[i] = pts
	}
	return out, nil
}

// catchRates computes, per benchmark and then averaged, the fraction of
// IPC changes larger than level·σ that a BBV threshold th detects
// (Region 2 / (Region 1 + Region 2) of Fig 6).
func catchRates(series [][]changePoint, th, level float64) float64 {
	var rates []float64
	for _, pts := range series {
		var caught, total float64
		for _, pt := range pts {
			if pt.IPCSigma > level {
				total++
				if pt.BBVAngle > th*math.Pi {
					caught++
				}
			}
		}
		if total > 0 {
			rates = append(rates, caught/total)
		}
	}
	return stats.Mean(rates) * 100
}

// falsePositiveRates computes the fraction of detected phase changes whose
// IPC change is below level·σ (Region 4 / (Region 2 + Region 4)).
func falsePositiveRates(series [][]changePoint, th, level float64) float64 {
	var rates []float64
	for _, pts := range series {
		var falsePos, detected float64
		for _, pt := range pts {
			if pt.BBVAngle > th*math.Pi {
				detected++
				if pt.IPCSigma <= level {
					falsePos++
				}
			}
		}
		if detected > 0 {
			rates = append(rates, falsePos/detected)
		}
	}
	return stats.Mean(rates) * 100
}

// Fig8 regenerates Figure 8: percentage of significant IPC changes caught
// versus BBV threshold, per σ level. The paper reports a knee near .05π.
func Fig8(s *Suite) (*Report, error) {
	profiles, err := s.PaperTen()
	if err != nil {
		return nil, err
	}
	gran := analysisGran(s)
	series, err := changeSeriesAll(profiles, gran)
	if err != nil {
		return nil, err
	}
	r := NewReport("fig8", "% of IPC changes caught vs BBV threshold")

	levels := sigmaLevels()
	header := []string{"threshold(×π)"}
	for _, l := range levels {
		header = append(header, fmt.Sprintf(">%.1fσ", l))
	}
	t := r.AddTable("catch rate (%)", header...)
	for _, th := range thresholdSweep() {
		row := []string{f2(th)}
		for _, l := range levels {
			row = append(row, f2(catchRates(series, th, l)))
		}
		t.AddRow(row...)
	}
	r.Metrics["catch_.05pi_.3sigma_pct"] = catchRates(series, 0.05, 0.3)
	r.Metrics["catch_.25pi_.3sigma_pct"] = catchRates(series, 0.25, 0.3)
	r.Notef("catch rate at .05π for >0.3σ changes: %.1f%% (paper: knee in the curve around .05π)",
		r.Metrics["catch_.05pi_.3sigma_pct"])
	return r, nil
}

// Fig9 regenerates Figure 9: percentage of detected phase changes that are
// false positives, versus BBV threshold, per σ level.
func Fig9(s *Suite) (*Report, error) {
	profiles, err := s.PaperTen()
	if err != nil {
		return nil, err
	}
	gran := analysisGran(s)
	series, err := changeSeriesAll(profiles, gran)
	if err != nil {
		return nil, err
	}
	r := NewReport("fig9", "% of detected phase changes that are false positives vs threshold")

	levels := sigmaLevels()
	header := []string{"threshold(×π)"}
	for _, l := range levels {
		header = append(header, fmt.Sprintf("%.1fσ", l))
	}
	t := r.AddTable("false-positive rate (%)", header...)
	for _, th := range thresholdSweep() {
		row := []string{f2(th)}
		for _, l := range levels {
			row = append(row, f2(falsePositiveRates(series, th, l)))
		}
		t.AddRow(row...)
	}
	r.Metrics["falsepos_.05pi_.3sigma_pct"] = falsePositiveRates(series, 0.05, 0.3)
	r.Metrics["falsepos_.30pi_.3sigma_pct"] = falsePositiveRates(series, 0.30, 0.3)
	r.Notef("false positives fall as the threshold rises (paper: set the threshold as high as accuracy allows)")
	return r, nil
}
