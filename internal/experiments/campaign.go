package experiments

import (
	"context"
	"fmt"

	"pgss/internal/campaign"
	"pgss/internal/core"
	"pgss/internal/cpu"
	"pgss/internal/parallel"
	"pgss/internal/pgsserrors"
	"pgss/internal/sampling"
	"pgss/internal/workload"
)

// CampaignTechniques lists the techniques the campaign runner can execute,
// in report order. Seeded techniques (TurboSMARTS, SimPoint, Stratified)
// vary with the spec seed; the deterministic ones ignore it.
func CampaignTechniques() []string {
	return []string{
		"PGSS", "PGSS-Live", "PGSS-Adaptive", "SMARTS", "TurboSMARTS",
		"SimPoint", "OnlineSimPoint", "Stratified", "2PSS", "RSS", "Full",
	}
}

// CampaignSpecs builds the benchmark × technique × seed grid. seeds = 1
// runs each pair once with seed 1.
func CampaignSpecs(benchmarks, techniques []string, seeds int) []campaign.Spec {
	if seeds < 1 {
		seeds = 1
	}
	seedVals := make([]int64, seeds)
	for i := range seedVals {
		seedVals[i] = int64(i + 1)
	}
	return campaign.Grid(benchmarks, techniques, seedVals)
}

// CampaignRun executes one campaign spec: it resolves the benchmark's
// profile (recording on first use, shared across runs) and dispatches to
// the spec's technique at the suite's scale. It is the campaign.RunFunc of
// the pgss-bench campaign mode.
func (s *Suite) CampaignRun(ctx context.Context, sp campaign.Spec) (sampling.Result, error) {
	p, err := s.Profile(sp.Benchmark)
	if err != nil {
		return sampling.Result{}, err
	}
	scale := s.Scale()
	//pgss:enum technique
	switch sp.Technique {
	case "PGSS":
		if s.opts.Shards > 1 || s.opts.SampleWorkers > 1 {
			res, _, err := parallel.Run(ctx, parallel.NewProfileSource(p), core.DefaultConfig(scale),
				parallel.Options{Shards: s.opts.Shards, SampleWorkers: s.opts.SampleWorkers})
			return res, err
		}
		res, _, err := core.RunContext(ctx, sampling.NewProfileTarget(p), core.DefaultConfig(scale))
		return res, err
	case "PGSS-Live":
		// Checkpoint-accelerated live execution: the benchmark's checkpoint
		// library (recorded once, shared via the artifact store when one is
		// configured) lets every detailed sample restore from the nearest
		// stored checkpoint instead of fast-forwarding from op 0. The
		// recorded profile supplies only TrueIPC for reporting.
		lib, err := s.CheckpointLibrary(sp.Benchmark)
		if err != nil {
			return sampling.Result{}, err
		}
		spec, err := workload.Get(sp.Benchmark)
		if err != nil {
			return sampling.Result{}, err
		}
		// Cores must be built at the same length as the library's recording
		// core (the snapshot pins the machine footprint); the profile's
		// TotalOps is the retired count, which the generator may round.
		newCore := func() (*cpu.Core, error) { return s.newCore(spec, s.targetOps(spec)) }
		src, err := parallel.NewLiveSource(lib, s.hash, newCore, p.TotalOps, p.TrueIPC())
		if err != nil {
			return sampling.Result{}, err
		}
		res, _, err := parallel.Run(ctx, src, core.DefaultConfig(scale),
			parallel.Options{Shards: s.opts.Shards, SampleWorkers: s.opts.SampleWorkers})
		return res, err
	case "PGSS-Adaptive":
		res, _, err := core.RunAdaptive(sampling.NewProfileTarget(p), core.DefaultAdaptiveConfig(scale))
		return res, err
	case "SMARTS":
		return sampling.SMARTS(sampling.NewProfileTarget(p), sampling.DefaultSMARTSConfig(scale))
	case "TurboSMARTS":
		cfg := sampling.DefaultTurboSMARTSConfig(scale)
		cfg.Seed = sp.Seed
		return sampling.TurboSMARTS(p, cfg)
	case "SimPoint":
		cfg := sampling.SimPointOverall(scale)
		cfg.Seed = sp.Seed
		return sampling.SimPoint(p, cfg)
	case "OnlineSimPoint":
		return sampling.OnlineSimPoint(p, sampling.OnlineSimPointOverall(scale))
	case "Stratified":
		cfg := sampling.DefaultStratifiedConfig(scale)
		cfg.Seed = sp.Seed
		return sampling.Stratified(p, cfg)
	case "2PSS":
		cfg := sampling.DefaultTwoPhaseConfig(scale)
		cfg.Seed = sp.Seed
		return sampling.TwoPhase(p, cfg)
	case "RSS":
		cfg := sampling.DefaultRankedSetConfig(scale)
		cfg.Seed = sp.Seed
		return sampling.RankedSet(p, cfg)
	case "Full":
		return sampling.Full(sampling.NewProfileTarget(p), p.BBVOps)
	default:
		return sampling.Result{}, pgsserrors.Invalidf(
			"experiments: unknown campaign technique %q (have %v)", sp.Technique, CampaignTechniques())
	}
}

// ResolveTechniques expands "all" and validates technique names.
func ResolveTechniques(names []string) ([]string, error) {
	known := map[string]bool{}
	for _, t := range CampaignTechniques() {
		known[t] = true
	}
	var out []string
	for _, n := range names {
		if n == "all" {
			return CampaignTechniques(), nil
		}
		if !known[n] {
			return nil, fmt.Errorf("experiments: unknown technique %q (have %v or 'all')",
				n, CampaignTechniques())
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return CampaignTechniques(), nil
	}
	return out, nil
}
