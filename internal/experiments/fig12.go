package experiments

import (
	"fmt"

	"pgss/internal/core"
	"pgss/internal/profile"
	"pgss/internal/sampling"
	"pgss/internal/stats"
)

// techniqueRuns holds one technique's results across the ten benchmarks.
type techniqueRuns struct {
	label   string
	results []sampling.Result
}

func (t *techniqueRuns) errors() []float64 {
	out := make([]float64, len(t.results))
	for i, r := range t.results {
		out[i] = r.ErrorPct()
	}
	return out
}

func (t *techniqueRuns) detailed() []float64 {
	out := make([]float64, len(t.results))
	for i, r := range t.results {
		out[i] = float64(r.Costs.DetailedTotal())
	}
	return out
}

// Fig12Data is the structured outcome of the Fig 12 comparison, reused by
// Fig 13's time model and by tests.
type Fig12Data struct {
	Techniques []*techniqueRuns
}

// ByLabel returns the runs of one technique.
func (d *Fig12Data) ByLabel(label string) *techniqueRuns {
	for _, t := range d.Techniques {
		if t.label == label {
			return t
		}
	}
	return nil
}

// runFig12 executes all eight technique configurations of Figure 12 over
// the ten benchmarks.
func runFig12(s *Suite) (*Fig12Data, error) {
	profiles, err := s.PaperTen()
	if err != nil {
		return nil, err
	}
	scale := s.Scale()
	d := &Fig12Data{}
	add := func(label string, run func(p *profile.Profile) (sampling.Result, error)) error {
		tr := &techniqueRuns{label: label}
		for _, p := range profiles {
			res, err := run(p)
			if err != nil {
				return fmt.Errorf("fig12: %s on %s: %w", label, p.Benchmark, err)
			}
			tr.results = append(tr.results, res)
		}
		d.Techniques = append(d.Techniques, tr)
		return nil
	}

	smartsCfg := sampling.DefaultSMARTSConfig(scale)
	if err := add("SMARTS", func(p *profile.Profile) (sampling.Result, error) {
		return sampling.SMARTS(sampling.NewProfileTarget(p), smartsCfg)
	}); err != nil {
		return nil, err
	}
	if err := add("TurboSMARTS", func(p *profile.Profile) (sampling.Result, error) {
		return sampling.TurboSMARTS(p, sampling.DefaultTurboSMARTSConfig(scale))
	}); err != nil {
		return nil, err
	}
	spSweep := sampling.SimPointSweep(scale)
	if err := add("SimPoint(best)", func(p *profile.Profile) (sampling.Result, error) {
		best, _, err := sampling.SimPointBest(p, spSweep)
		return best, err
	}); err != nil {
		return nil, err
	}
	spOverall := sampling.SimPointOverall(scale)
	if err := add("SimPoint(10x100M)", func(p *profile.Profile) (sampling.Result, error) {
		return sampling.SimPoint(p, spOverall)
	}); err != nil {
		return nil, err
	}
	ospSweep := sampling.OnlineSimPointSweep(scale)
	if err := add("OnlineSP(best)", func(p *profile.Profile) (sampling.Result, error) {
		best, _, err := sampling.OnlineSimPointBest(p, ospSweep)
		return best, err
	}); err != nil {
		return nil, err
	}
	ospOverall := sampling.OnlineSimPointOverall(scale)
	if err := add("OnlineSP(100M/.1)", func(p *profile.Profile) (sampling.Result, error) {
		return sampling.OnlineSimPoint(p, ospOverall)
	}); err != nil {
		return nil, err
	}
	pgssSweep := core.Sweep(scale)
	if err := add("PGSS(best)", func(p *profile.Profile) (sampling.Result, error) {
		best, _, err := core.Best(func() sampling.Target { return sampling.NewProfileTarget(p) }, pgssSweep)
		return best, err
	}); err != nil {
		return nil, err
	}
	pgssOverall := core.DefaultConfig(scale)
	if err := add("PGSS(1M/.05)", func(p *profile.Profile) (sampling.Result, error) {
		res, _, err := core.Run(sampling.NewProfileTarget(p), pgssOverall)
		return res, err
	}); err != nil {
		return nil, err
	}
	return d, nil
}

// Fig12 regenerates Figure 12: sampling error and detailed-simulation
// volume for every technique across the ten benchmarks. The paper's
// headline claims checked here:
//   - PGSS error is worse than SMARTS/SimPoint but better than TurboSMARTS;
//   - PGSS needs ~an order of magnitude less detailed simulation than
//     SMARTS and 2–3 orders less than SimPoint.
func Fig12(s *Suite) (*Report, error) {
	d, err := runFig12(s)
	if err != nil {
		return nil, err
	}
	profiles, err := s.PaperTen()
	if err != nil {
		return nil, err
	}
	r := NewReport("fig12", "sampling error and detailed simulation by technique, 10 benchmarks")

	header := append([]string{"technique"}, func() []string {
		h := make([]string, 0, len(profiles)+2)
		for _, p := range profiles {
			h = append(h, shortName(p.Benchmark))
		}
		return append(h, "A-Mean", "G-Mean")
	}()...)

	et := r.AddTable("sampling error (% of benchmark IPC)", header...)
	for _, tr := range d.Techniques {
		row := []string{tr.label}
		for _, res := range tr.results {
			row = append(row, pct(res.ErrorPct()))
		}
		errs := tr.errors()
		am, gm := stats.ArithmeticMean(errs), stats.GeometricMean(errs)
		row = append(row, pct(am), pct(gm))
		et.AddRow(row...)
		r.Metrics["err_amean_"+tr.label] = am
	}

	dt := r.AddTable("detailed simulation (ops, incl. detailed warming)", header...)
	for _, tr := range d.Techniques {
		row := []string{tr.label}
		for _, res := range tr.results {
			row = append(row, eng(float64(res.Costs.DetailedTotal())))
		}
		det := tr.detailed()
		row = append(row, eng(stats.ArithmeticMean(det)), eng(stats.GeometricMean(det)))
		dt.AddRow(row...)
		r.Metrics["det_amean_"+tr.label] = stats.ArithmeticMean(det)
	}

	// Headline ratios.
	pgss := r.Metrics["det_amean_PGSS(1M/.05)"]
	if pgss > 0 {
		r.Metrics["detail_ratio_smarts_over_pgss"] = r.Metrics["det_amean_SMARTS"] / pgss
		r.Metrics["detail_ratio_simpoint_over_pgss"] = r.Metrics["det_amean_SimPoint(10x100M)"] / pgss
		r.Metrics["detail_ratio_turbo_over_pgss"] = r.Metrics["det_amean_TurboSMARTS"] / pgss
		r.Notef("detailed-simulation reduction of PGSS(1M/.05): %.1f× vs SMARTS, %.0f× vs SimPoint(10x100M), %.1f× vs TurboSMARTS (paper: ~10×, 100–1000×, >1×)",
			r.Metrics["detail_ratio_smarts_over_pgss"],
			r.Metrics["detail_ratio_simpoint_over_pgss"],
			r.Metrics["detail_ratio_turbo_over_pgss"])
	}
	r.Notef("accuracy ordering (A-mean): SMARTS %.2f%%, SimPoint(best) %.2f%%, PGSS(best) %.2f%%, TurboSMARTS %.2f%%",
		r.Metrics["err_amean_SMARTS"], r.Metrics["err_amean_SimPoint(best)"],
		r.Metrics["err_amean_PGSS(best)"], r.Metrics["err_amean_TurboSMARTS"])
	return r, nil
}
