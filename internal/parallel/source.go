package parallel

import (
	"context"
	"fmt"

	"pgss/internal/bbv"
	"pgss/internal/checkpoint"
	"pgss/internal/cpu"
	"pgss/internal/pgsserrors"
	"pgss/internal/profile"
)

// Window is one precomputed fast-forward window.
type Window struct {
	// Ops covered by the window (the final window may be short).
	Ops uint64
	// BBV is the normalised basic-block vector of the window.
	BBV bbv.Vector
	// MAV is the normalised memory-access vector of the window; nil when
	// the source has no MAV channel.
	MAV bbv.Vector
}

// Source is a benchmark execution the parallel engine can shard: window
// BBVs must be computable for any contiguous range independently, and
// detailed samples must be executable at any op position.
type Source interface {
	// Benchmark returns the workload name.
	Benchmark() string
	// TotalOps returns the full run length.
	TotalOps() uint64
	// TrueIPC returns the whole-program IPC for error reporting.
	TrueIPC() float64
	// Windows computes the windows with indices [first, first+len(out)) at
	// fast-forward granularity ffOps, filling out. Implementations must be
	// safe for concurrent calls over disjoint ranges.
	Windows(ctx context.Context, ffOps uint64, first int, out []Window) error
	// NewSampler returns a detailed-sample executor owned by a single
	// worker goroutine.
	NewSampler() (Sampler, error)
}

// Sampler executes one detailed sample: warm unmeasured detailed ops
// followed by sample measured ops starting at op position pos, returning
// the measured IPC. An IPC ≤ 0 marks the sample unmeasurable (nothing is
// recorded); an error aborts the run.
type Sampler interface {
	Sample(pos, warm, sample uint64) (float64, error)
}

// ProfileSource replays a recorded profile. Replayed parallel runs are
// bit-identical to serial core.Run over sampling.NewProfileTarget of the
// same profile: windows sum the same recorded raw BBVs and samples read
// the same recorded cycle counts.
type ProfileSource struct {
	p *profile.Profile
}

// NewProfileSource wraps p.
func NewProfileSource(p *profile.Profile) *ProfileSource { return &ProfileSource{p: p} }

// Benchmark implements Source.
func (s *ProfileSource) Benchmark() string { return s.p.Benchmark }

// TotalOps implements Source.
func (s *ProfileSource) TotalOps() uint64 { return s.p.TotalOps }

// TrueIPC implements Source.
func (s *ProfileSource) TrueIPC() float64 { return s.p.TrueIPC() }

// Windows implements Source.
func (s *ProfileSource) Windows(ctx context.Context, ffOps uint64, first int, out []Window) error {
	pos := uint64(first) * ffOps
	for i := range out {
		if err := ctx.Err(); err != nil {
			return err
		}
		raw, err := s.p.BBVWindow(pos, ffOps)
		if err != nil {
			return err
		}
		if raw == nil {
			return pgsserrors.Invalidf(
				"parallel: %s: window %d starts at %d, past the %d-op profile",
				s.p.Benchmark, first+i, pos, s.p.TotalOps)
		}
		out[i].BBV = raw.Normalize()
		if s.p.HasMAV() {
			rawMAV, err := s.p.MAVWindow(pos, ffOps)
			if err != nil {
				return err
			}
			out[i].MAV = rawMAV.Normalize()
		}
		out[i].Ops = ffOps
		if remaining := s.p.TotalOps - pos; remaining < ffOps {
			out[i].Ops = remaining
		}
		pos += ffOps
	}
	return nil
}

// NewSampler implements Source. The profile's cycle prefix sums are built
// once under a sync.Once, so concurrent samplers share the profile safely.
func (s *ProfileSource) NewSampler() (Sampler, error) {
	return profileSampler{p: s.p}, nil
}

type profileSampler struct {
	p *profile.Profile
}

func (s profileSampler) Sample(pos, warm, sample uint64) (float64, error) {
	return s.p.IPCWindow(pos+warm, sample)
}

// LiveSource drives cycle-level simulators through a checkpoint library:
// every shard and every sample worker owns an independent core, restored
// from the nearest checkpoint and warmed forward. Restoring is
// bit-identical to continuous simulation, and window BBVs drop the
// tracker's pending ops at every boundary, so the windows — and therefore
// the whole run — are invariant to the shard layout: the engine returns
// identical results for any Shards/SampleWorkers setting.
//
// Live semantics differ in one documented respect from the serial
// sampling.LiveTarget: the serial target carries pending (post-last-branch)
// ops across window boundaries, while the engine's windows are
// self-contained. The engine with Shards=1 is the reference for the engine
// with Shards=N.
type LiveSource struct {
	lib     *checkpoint.Library
	hash    *bbv.Hash
	mavHash *bbv.Hash // nil = MAV channel off
	newCore func() (*cpu.Core, error)
	name    string
	total   uint64
	trueIPC float64
}

// EnableMAV attaches a memory-access-vector hash (from bbv.NewMAVHash):
// subsequent Windows calls fill Window.MAV. MAV accumulation has no
// pending state, so the vectors are shard-layout-invariant by
// construction.
func (s *LiveSource) EnableMAV(h *bbv.Hash) { s.mavHash = h }

// NewLiveSource builds a live source over a recorded checkpoint library.
// newCore must build a fresh core of the same program and configuration the
// library was recorded with; totalOps is the recorded program length and
// trueIPC the reference IPC (0 when unknown).
func NewLiveSource(lib *checkpoint.Library, hash *bbv.Hash, newCore func() (*cpu.Core, error), totalOps uint64, trueIPC float64) (*LiveSource, error) {
	if lib == nil || lib.Len() == 0 {
		return nil, pgsserrors.Invalidf("parallel: empty checkpoint library")
	}
	if totalOps == 0 {
		return nil, pgsserrors.Invalidf("parallel: zero totalOps for live source")
	}
	probe, err := newCore()
	if err != nil {
		return nil, fmt.Errorf("parallel: core factory: %w", err)
	}
	return &LiveSource{
		lib:     lib,
		hash:    hash,
		newCore: newCore,
		name:    probe.M.Program().Name,
		total:   totalOps,
		trueIPC: trueIPC,
	}, nil
}

// Benchmark implements Source.
func (s *LiveSource) Benchmark() string { return s.name }

// TotalOps implements Source.
func (s *LiveSource) TotalOps() uint64 { return s.total }

// TrueIPC implements Source.
func (s *LiveSource) TrueIPC() float64 { return s.trueIPC }

// Windows implements Source: one shard, one core. The core seeks to the
// shard's start (checkpoint restore + functional warm-forward) and then
// fast-forwards through the shard's windows with the BBV tracker attached.
func (s *LiveSource) Windows(ctx context.Context, ffOps uint64, first int, out []Window) error {
	c, err := s.newCore()
	if err != nil {
		return fmt.Errorf("parallel: core factory: %w", err)
	}
	start := uint64(first) * ffOps
	if _, err := s.lib.Seek(c, start); err != nil {
		return fmt.Errorf("parallel: shard at window %d: %w", first, err)
	}
	tracker := bbv.NewTracker(s.hash)
	var mavt *bbv.MAVTracker
	if s.mavHash != nil {
		mavt = bbv.NewMAVTracker(s.mavHash)
	}
	buf := c.BlockBuf()
	pos := start
	for i := range out {
		if err := ctx.Err(); err != nil {
			return err
		}
		want := ffOps
		if remaining := s.total - pos; remaining < want {
			want = remaining
		}
		// Superblock-batched functional warming with run-batched tracker
		// updates; exact-integer float accumulation makes the window BBVs
		// identical to the historical per-op loop.
		var done, run uint64
		for done < want && !c.M.Halted() {
			chunk := want - done
			if chunk > uint64(len(buf)) {
				chunk = uint64(len(buf))
			}
			n := c.StepWarmBlock(buf[:chunk])
			for j := range buf[:n] {
				run++
				if buf[j].Taken {
					tracker.RetireOps(run)
					tracker.TakenBranch(buf[j].Addr)
					run = 0
				}
				if mavt != nil && buf[j].Op.IsMem() {
					mavt.Access(buf[j].MemAddr)
				}
			}
			done += uint64(n)
			if uint64(n) < chunk {
				break
			}
		}
		tracker.RetireOps(run)
		if err := c.M.Err(); err != nil {
			return fmt.Errorf("parallel: %s halted abnormally in window %d: %w", s.name, first+i, err)
		}
		if done < want {
			return pgsserrors.Invalidf(
				"parallel: %s ended at %d ops inside window %d, library declares %d",
				s.name, pos+done, first+i, s.total)
		}
		out[i].Ops = done
		out[i].BBV = tracker.TakeVector()
		if mavt != nil {
			out[i].MAV = mavt.TakeVector()
		}
		// Self-contained windows: ops retired since the last taken branch
		// do not leak into the next window, whichever shard computes it.
		tracker.DropPending()
		pos += done
	}
	return nil
}

// NewSampler implements Source: each worker owns a core it repeatedly
// restores from the library (TurboSMARTS-style random-access live samples).
func (s *LiveSource) NewSampler() (Sampler, error) {
	c, err := s.newCore()
	if err != nil {
		return nil, fmt.Errorf("parallel: core factory: %w", err)
	}
	return &liveSampler{lib: s.lib, core: c}, nil
}

type liveSampler struct {
	lib  *checkpoint.Library
	core *cpu.Core
}

func (s *liveSampler) Sample(pos, warm, sample uint64) (float64, error) {
	ipc, _, err := s.lib.SampleAt(s.core, pos, warm, sample)
	return ipc, err
}
