// Package parallel executes one PGSS-Sim run with shard-parallel
// fast-forwarding and a worker pool for detailed samples, producing results
// bit-identical to the serial controller.
//
// The engine splits the run into two stages:
//
//  1. Window precomputation. The instruction stream is cut into
//     checkpoint-anchored shards of consecutive fast-forward windows; each
//     shard computes its windows' BBVs concurrently. For a recorded profile
//     this sums the stored raw vectors; for a live simulator it restores the
//     nearest checkpoint with functional warming and replays forward
//     (bit-identical restore makes the per-window retire streams — and hence
//     the BBVs — independent of the shard layout).
//
//  2. Decision walk. A single goroutine drives the shared core.Controller
//     over the windows in program order; this is what makes the result
//     deterministic. Detailed samples the controller schedules are dispatched
//     to a pool of sample workers and settle lazily: the controller waits for
//     a sample's measurement only at the first decision that depends on it,
//     so sample execution overlaps the decision walk and other samples.
//
// Because the controller is the same object the serial loop drives, and
// because it settles pending samples in execution order before every
// decision that reads them, a parallel run returns exactly the
// sampling.Result and core.Stats of core.Run on the same source — verified
// by tests, not just asserted.
package parallel

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"pgss/internal/core"
	"pgss/internal/faultinject"
	"pgss/internal/pgsserrors"
	"pgss/internal/sampling"
)

// Options sets the engine's concurrency. Both count fields default to
// GOMAXPROCS when zero or negative; Shards=1 with SampleWorkers=1
// reproduces the serial schedule on a single extra goroutine.
type Options struct {
	// Shards is the number of concurrent fast-forward shards computing
	// window BBVs.
	Shards int
	// SampleWorkers is the number of concurrent detailed-sample executors.
	SampleWorkers int

	// Hooks, when non-nil, fires injected failures at the parallel.shard
	// and parallel.sample points (chaos testing). Neither hooks nor the
	// watchdog can change the result of a run that completes: they act only
	// on error paths, preserving the bit-identical-to-serial guarantee.
	Hooks *faultinject.Hooks
	// StallTimeout arms a watchdog that cancels the run with a retryable
	// ErrWorkerStalled when no shard, sample worker or decision-walk step
	// reports progress for this long (0 = no watchdog). Requires Clock.
	StallTimeout time.Duration
	// Clock drives the watchdog (nil disables it; campaign.WallClock() for
	// production, faultinject.NewManualClock for deterministic tests).
	Clock faultinject.Clock
}

func (o Options) normalized() Options {
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.SampleWorkers <= 0 {
		o.SampleWorkers = runtime.GOMAXPROCS(0)
	}
	return o
}

// numWindows returns how many fast-forward windows cover total ops.
func numWindows(total, ffOps uint64) int {
	return int((total + ffOps - 1) / ffOps)
}

// Run executes one PGSS run over src with the given configuration and
// concurrency. Cancellation, partial results and error classes match
// core.RunContext.
func Run(ctx context.Context, src Source, cfg core.Config, opts Options) (sampling.Result, core.Stats, error) {
	opts = opts.normalized()
	ctl, err := core.NewController(cfg, src.Benchmark(), src.TrueIPC())
	if err != nil {
		return sampling.Result{}, core.Stats{}, err
	}
	total := src.TotalOps()
	n := numWindows(total, cfg.FFOps)
	if n == 0 {
		return ctl.Finish()
	}

	// The watchdog (inactive unless StallTimeout and Clock are set) watches
	// all three progress sources: shard completions, sample completions and
	// decision-walk steps.
	ctx, pulse, stopWatchdog := watchdog(ctx, opts.StallTimeout, opts.Clock)
	defer stopWatchdog()

	// Stage 1: shard-parallel window precomputation.
	wins := make([]Window, n)
	if err := precompute(ctx, src, cfg.FFOps, wins, opts, pulse); err != nil {
		res, st := ctl.Partial()
		if stalled := stallCause(ctx); stalled != nil {
			return res, st, fmt.Errorf("pgss: %s after %d windows: %w", res.Benchmark, ctl.Windows(), stalled)
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			return res, st, cancelErr(res.Benchmark, ctl.Windows(), ctxErr)
		}
		return res, st, err
	}

	// Stage 2: serial decision walk with asynchronous sample execution.
	pool, err := newSamplePool(ctx, src, opts, pulse)
	if err != nil {
		res, st := ctl.Partial()
		return res, st, err
	}
	// The pool drains (and harmlessly resolves) any queued requests on
	// every exit path, so no goroutine is left blocked.
	defer pool.close()

	for i := 0; i < n; i++ {
		pulse()
		if err := ctx.Err(); err != nil {
			res, st := ctl.Partial()
			if stalled := stallCause(ctx); stalled != nil {
				return res, st, fmt.Errorf("pgss: %s after %d windows: %w", res.Benchmark, ctl.Windows(), stalled)
			}
			return res, st, cancelErr(res.Benchmark, ctl.Windows(), err)
		}
		posAfter := uint64(i+1) * cfg.FFOps
		if posAfter > total {
			posAfter = total
		}
		req, err := ctl.Advance(wins[i].BBV, wins[i].MAV, wins[i].Ops, posAfter)
		if err != nil {
			res, st := ctl.Partial()
			if stalled := stallCause(ctx); stalled != nil {
				// A stalled sample worker surfaces here as a failed sample;
				// report the watchdog's classified cause so the campaign
				// layer retries.
				return res, st, fmt.Errorf("pgss: %s after %d windows: %w (%v)",
					res.Benchmark, ctl.Windows(), stalled, err)
			}
			return res, st, err
		}
		if req == nil {
			continue
		}
		switch {
		case i+1 >= n:
			// The program ends before the sample's window begins; the
			// serial loop never executes this trailing request either
			// (Finish drops it unadopted).
		case req.Warm+req.Sample > wins[i+1].Ops:
			// The sample does not fit in the (short, final) next window:
			// nothing is measured, the ops stay functional — serial
			// semantics for an unexecutable sample.
			req.Resolve(math.NaN(), 0, 0)
		default:
			pool.submit(req)
		}
	}
	return ctl.Finish()
}

func cancelErr(benchmark string, windows int, err error) error {
	return fmt.Errorf("pgss: %s cancelled after %d windows: %w (%w)",
		benchmark, windows, pgsserrors.ErrBudgetExceeded, err)
}

// precompute fills wins with the run's windows, splitting the work into up
// to opts.Shards contiguous ranges computed concurrently. A panic inside a
// shard is recovered into that shard's error slot, so one poisoned shard
// fails the run instead of the process.
func precompute(ctx context.Context, src Source, ffOps uint64, wins []Window, opts Options, pulse func()) error {
	n := len(wins)
	shards := opts.Shards
	if shards > n {
		shards = n
	}
	if shards <= 1 {
		if err := opts.Hooks.Fire(ctx, faultinject.PointParallelShard); err != nil {
			return err
		}
		return src.Windows(ctx, ffOps, 0, wins)
	}
	per := (n + shards - 1) / shards
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		lo := s * per
		hi := lo + per
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[s] = fmt.Errorf("%w: shard %d: %v\n%s",
						pgsserrors.ErrRunPanicked, s, r, debug.Stack())
				}
			}()
			if err := opts.Hooks.Fire(ctx, faultinject.PointParallelShard); err != nil {
				errs[s] = err
				return
			}
			errs[s] = src.Windows(ctx, ffOps, lo, wins[lo:hi])
			pulse()
		}(s, lo, hi)
	}
	wg.Wait()
	// Prefer the most informative error: a stall or panic explains why the
	// sibling shards saw their context die.
	var first error
	for _, e := range errs {
		if e == nil {
			continue
		}
		if errors.Is(e, pgsserrors.ErrWorkerStalled) || errors.Is(e, pgsserrors.ErrRunPanicked) {
			return e
		}
		if first == nil {
			first = e
		}
	}
	return first
}

// samplePool executes detailed samples on a fixed set of workers, each
// owning one Sampler (and therefore, for live sources, one simulator core).
type samplePool struct {
	jobs chan *core.SampleRequest
	wg   sync.WaitGroup
}

func newSamplePool(ctx context.Context, src Source, opts Options, pulse func()) (*samplePool, error) {
	workers := opts.SampleWorkers
	if workers < 1 {
		workers = 1
	}
	p := &samplePool{jobs: make(chan *core.SampleRequest, workers)}
	for w := 0; w < workers; w++ {
		s, err := src.NewSampler()
		if err != nil {
			p.close()
			return nil, err
		}
		p.wg.Add(1)
		go func(s Sampler) {
			defer p.wg.Done()
			for req := range p.jobs {
				runSample(ctx, s, req, opts.Hooks)
				pulse()
			}
		}(s)
	}
	return p, nil
}

// runSample executes one detailed sample with panic recovery: a panicking
// sampler fails its request (so the decision walk unblocks with a
// classified error) and the worker survives to drain the queue.
func runSample(ctx context.Context, s Sampler, req *core.SampleRequest, hooks *faultinject.Hooks) {
	defer func() {
		if r := recover(); r != nil {
			req.Fail(fmt.Errorf("%w: sample at op %d: %v\n%s",
				pgsserrors.ErrRunPanicked, req.Pos, r, debug.Stack()))
		}
	}()
	if err := hooks.Fire(ctx, faultinject.PointParallelSample); err != nil {
		req.Fail(err)
		return
	}
	ipc, err := s.Sample(req.Pos, req.Warm, req.Sample)
	switch {
	case err != nil:
		req.Fail(err)
	case ipc > 0:
		req.Resolve(ipc, req.Warm, req.Sample)
	default:
		// Unmeasurable window (zero recorded cycles): charge nothing,
		// record nothing — serial semantics.
		req.Resolve(math.NaN(), 0, 0)
	}
}

func (p *samplePool) submit(req *core.SampleRequest) { p.jobs <- req }

// close stops accepting work, lets the workers drain the queue (resolving
// every queued request) and waits for them to exit.
func (p *samplePool) close() {
	close(p.jobs)
	p.wg.Wait()
}
