package parallel

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"pgss/internal/bbv"
	"pgss/internal/core"
	"pgss/internal/cpu"
	"pgss/internal/profile"
	"pgss/internal/sampling"
	"pgss/internal/workload"
)

var (
	benchOnce    sync.Once
	benchProfile *profile.Profile
	benchErr     error
)

func benchRecord() (*profile.Profile, error) {
	benchOnce.Do(func() {
		spec, err := workload.Get("188.ammp")
		if err != nil {
			benchErr = err
			return
		}
		prog, err := spec.Build(10_000_000)
		if err != nil {
			benchErr = err
			return
		}
		c, err := cpu.NewCore(cpu.MustNewMachine(prog), cpu.DefaultCoreConfig())
		if err != nil {
			benchErr = err
			return
		}
		benchProfile, benchErr = profile.Record(c, bbv.MustNewHash(5, 42), profile.DefaultConfig())
	})
	return benchProfile, benchErr
}

// BenchmarkRunSerial is the serial baseline the shard sweep is compared
// against.
func BenchmarkRunSerial(b *testing.B) {
	p, err := benchRecord()
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig(10)
	cfg.FFOps = 50_000
	cfg.SpreadOps = 50_000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Run(sampling.NewProfileTarget(p), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunParallel sweeps the engine's concurrency on profile replay.
// Speedup over BenchmarkRunSerial scales with available CPUs; on a 1-CPU
// host the sweep documents the engine's overhead instead.
func BenchmarkRunParallel(b *testing.B) {
	p, err := benchRecord()
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig(10)
	cfg.FFOps = 50_000
	cfg.SpreadOps = 50_000
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", w), func(b *testing.B) {
			opts := Options{Shards: w, SampleWorkers: w}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := Run(context.Background(), NewProfileSource(p), cfg, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
