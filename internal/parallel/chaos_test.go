package parallel

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"pgss/internal/faultinject"
	"pgss/internal/pgsserrors"
)

// TestShardPanicRecovered: a panic inside one shard goroutine must become a
// classified ErrRunPanicked on the run, not a process crash.
func TestShardPanicRecovered(t *testing.T) {
	p := suiteProfile(t, "197.parser", 400_000)
	hooks := faultinject.NewHooks(faultinject.HookRule{
		Point: faultinject.PointParallelShard, Action: faultinject.HookPanic, Nth: 2,
	})
	_, _, err := Run(context.Background(), NewProfileSource(p), testConfig(),
		Options{Shards: 4, SampleWorkers: 2, Hooks: hooks})
	if !errors.Is(err, pgsserrors.ErrRunPanicked) {
		t.Fatalf("got %v, want ErrRunPanicked", err)
	}
	if hooks.Fired() != 1 {
		t.Fatalf("hook fired %d times, want 1", hooks.Fired())
	}
}

// TestSamplePanicRecovered: a panicking sample worker fails its request so
// the decision walk unblocks with ErrRunPanicked, and the pool survives to
// drain remaining requests.
func TestSamplePanicRecovered(t *testing.T) {
	p := suiteProfile(t, "197.parser", 400_000)
	hooks := faultinject.NewHooks(faultinject.HookRule{
		Point: faultinject.PointParallelSample, Action: faultinject.HookPanic, Nth: 1,
	})
	_, _, err := Run(context.Background(), NewProfileSource(p), testConfig(),
		Options{Shards: 2, SampleWorkers: 2, Hooks: hooks})
	if !errors.Is(err, pgsserrors.ErrRunPanicked) {
		t.Fatalf("got %v, want ErrRunPanicked", err)
	}
}

// TestStallWatchdogCancelsStalledShard: an injected shard stall makes no
// progress; the watchdog (on a manual clock) must cancel the run with a
// retryable ErrWorkerStalled instead of hanging.
func TestStallWatchdogCancelsStalledShard(t *testing.T) {
	p := suiteProfile(t, "197.parser", 400_000)
	hooks := faultinject.NewHooks(faultinject.HookRule{
		Point: faultinject.PointParallelShard, Action: faultinject.HookStall, Nth: 1,
	})
	clock := faultinject.NewManualClock(time.Unix(0, 0))
	errc := make(chan error, 1)
	go func() {
		_, _, err := Run(context.Background(), NewProfileSource(p), testConfig(), Options{
			Shards: 4, SampleWorkers: 2,
			Hooks: hooks, StallTimeout: time.Second, Clock: clock,
		})
		errc <- err
	}()

	// Let the healthy shards finish, then expire the stall window. Healthy
	// shard completions pulse the watchdog, so advance repeatedly until the
	// stalled shard is the only thing left and the deadline lapses.
	deadline := time.After(10 * time.Second)
	for {
		clock.Advance(time.Second)
		select {
		case err := <-errc:
			if !errors.Is(err, pgsserrors.ErrWorkerStalled) {
				t.Fatalf("got %v, want ErrWorkerStalled", err)
			}
			if !pgsserrors.Retryable(err) {
				t.Fatal("stall error must be retryable")
			}
			return
		case <-deadline:
			t.Fatal("watchdog never fired")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

// TestHookErrorDoesNotChangeCompletedResult: a transient injected shard
// error fails that run, but a clean rerun with spent hooks returns exactly
// the un-faulted result — hooks touch error paths only.
func TestHookErrorDoesNotChangeCompletedResult(t *testing.T) {
	p := suiteProfile(t, "197.parser", 400_000)
	src := NewProfileSource(p)
	cfg := testConfig()
	opts := Options{Shards: 4, SampleWorkers: 2}

	want, wantSt, err := Run(context.Background(), src, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}

	hooks := faultinject.NewHooks(faultinject.HookRule{
		Point: faultinject.PointParallelShard, Action: faultinject.HookError, Nth: 1,
	})
	opts.Hooks = hooks
	if _, _, err := Run(context.Background(), src, cfg, opts); err == nil {
		t.Fatal("injected shard error did not fail the run")
	} else if !pgsserrors.Retryable(err) {
		t.Fatalf("injected error not retryable: %v", err)
	}

	got, gotSt, err := Run(context.Background(), src, cfg, opts) // hooks spent
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) || !reflect.DeepEqual(gotSt, wantSt) {
		t.Fatal("retry after injected fault diverged from clean run")
	}
}
