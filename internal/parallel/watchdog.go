package parallel

import (
	"context"
	"errors"
	"time"

	"pgss/internal/faultinject"
	"pgss/internal/pgsserrors"
)

// watchdog arms a stall detector over parent: whenever no worker reports
// progress (via pulse) for opts.StallTimeout, the returned context is
// cancelled with an ErrWorkerStalled cause, releasing every goroutine that
// cooperatively waits on it. Inactive (no-op pulse/stop, parent returned
// unchanged) unless both StallTimeout and Clock are set, so the default
// engine carries no watchdog goroutine.
//
// The watchdog only ever turns a hung run into a classified, retryable
// error — it cannot alter the result of a run that completes, which keeps
// the engine's bit-identical-to-serial guarantee intact.
func watchdog(parent context.Context, timeout time.Duration, clock faultinject.Clock) (context.Context, func(), func()) {
	if timeout <= 0 || clock == nil {
		nop := func() {}
		return parent, nop, nop
	}
	ctx, cancel := context.WithCancelCause(parent)
	progress := make(chan struct{}, 1)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			case <-ctx.Done():
				return
			case <-progress:
				// Progress within the window: re-arm.
			case <-clock.After(timeout):
				cancel(pgsserrors.Stalledf("no worker progress within %v", timeout))
				return
			}
		}
	}()
	pulse := func() {
		select {
		case progress <- struct{}{}:
		default:
		}
	}
	stop := func() {
		close(done)
		cancel(nil)
	}
	return ctx, pulse, stop
}

// stallCause returns the watchdog's ErrWorkerStalled cause when that is why
// ctx died, or nil.
func stallCause(ctx context.Context) error {
	if ctx.Err() == nil {
		return nil
	}
	if cause := context.Cause(ctx); errors.Is(cause, pgsserrors.ErrWorkerStalled) {
		return cause
	}
	return nil
}
