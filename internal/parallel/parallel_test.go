package parallel

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"pgss/internal/bbv"
	"pgss/internal/checkpoint"
	"pgss/internal/core"
	"pgss/internal/cpu"
	"pgss/internal/pgsserrors"
	"pgss/internal/profile"
	"pgss/internal/sampling"
	"pgss/internal/workload"
)

var profileCache = map[string]*profile.Profile{}

func suiteProfile(t *testing.T, name string, ops uint64) *profile.Profile {
	t.Helper()
	key := fmt.Sprintf("%s/%d", name, ops)
	if p, ok := profileCache[key]; ok {
		return p
	}
	spec, err := workload.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := spec.Build(ops)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cpu.NewCore(cpu.MustNewMachine(prog), cpu.DefaultCoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, err := profile.Record(c, bbv.MustNewHash(5, 42), profile.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	profileCache[key] = p
	return p
}

func testConfig() core.Config {
	cfg := core.DefaultConfig(10)
	cfg.FFOps = 50_000
	cfg.SpreadOps = 50_000
	return cfg
}

// TestProfileParallelMatchesSerial is the tentpole guarantee: the parallel
// engine over a profile returns exactly the Result and Stats of the serial
// controller, including the sample trace, for every concurrency setting
// and for ablation variants that change the decision chain.
func TestProfileParallelMatchesSerial(t *testing.T) {
	p := suiteProfile(t, "188.ammp", 10_000_000)

	configs := map[string]core.Config{
		"default": testConfig(),
		"guarded": func() core.Config {
			c := testConfig()
			c.GuardTransitions = true
			return c
		}(),
		"traced": func() core.Config {
			c := testConfig()
			c.Trace = true
			return c
		}(),
		"nospread": func() core.Config {
			c := testConfig()
			c.DisableSpread = true
			return c
		}(),
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			wantRes, wantSt, err := core.Run(sampling.NewProfileTarget(p), cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, opts := range []Options{
				{Shards: 1, SampleWorkers: 1},
				{Shards: 4, SampleWorkers: 4},
				{Shards: 7, SampleWorkers: 3},
			} {
				res, st, err := Run(context.Background(), NewProfileSource(p), cfg, opts)
				if err != nil {
					t.Fatalf("%+v: %v", opts, err)
				}
				if !reflect.DeepEqual(res, wantRes) {
					t.Errorf("%+v: Result diverged from serial:\n got %+v\nwant %+v", opts, res, wantRes)
				}
				if !reflect.DeepEqual(st, wantSt) {
					t.Errorf("%+v: Stats diverged from serial:\n got %+v\nwant %+v", opts, st, wantSt)
				}
			}
		})
	}
}

// TestParallelDeterministicAcrossRuns: repeated parallel runs are
// bit-identical to each other (no scheduling-dependent drift).
func TestParallelDeterministicAcrossRuns(t *testing.T) {
	p := suiteProfile(t, "164.gzip", 5_000_000)
	cfg := testConfig()
	cfg.Trace = true
	opts := Options{Shards: 4, SampleWorkers: 4}
	res1, st1, err := Run(context.Background(), NewProfileSource(p), cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res2, st2, err := Run(context.Background(), NewProfileSource(p), cfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res1, res2) || !reflect.DeepEqual(st1, st2) {
			t.Fatalf("run %d diverged: %+v vs %+v", i, res2, res1)
		}
	}
}

func liveSource(t *testing.T, name string, ops, stride uint64) *LiveSource {
	t.Helper()
	spec, err := workload.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := spec.Build(ops)
	if err != nil {
		t.Fatal(err)
	}
	newCore := func() (*cpu.Core, error) {
		return cpu.NewCore(cpu.MustNewMachine(prog), cpu.DefaultCoreConfig())
	}
	rec, err := newCore()
	if err != nil {
		t.Fatal(err)
	}
	lib, err := checkpoint.Record(rec, stride, 0)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewLiveSource(lib, bbv.MustNewHash(5, 42), newCore, rec.M.Retired(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// TestLiveShardLayoutInvariant: a live (checkpoint-driven) run returns the
// same result whatever the shard count and worker count — the engine-level
// determinism guarantee for live sources.
func TestLiveShardLayoutInvariant(t *testing.T) {
	src := liveSource(t, "197.parser", 600_000, 50_000)
	cfg := testConfig()
	cfg.FFOps = 20_000
	cfg.SpreadOps = 20_000
	cfg.Trace = true

	ref, refSt, err := Run(context.Background(), src, cfg, Options{Shards: 1, SampleWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Samples == 0 {
		t.Fatal("live run took no samples — the invariance test would be vacuous")
	}
	for _, opts := range []Options{
		{Shards: 4, SampleWorkers: 4},
		{Shards: 3, SampleWorkers: 2},
	} {
		res, st, err := Run(context.Background(), src, cfg, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if !reflect.DeepEqual(res, ref) {
			t.Errorf("%+v: live Result diverged:\n got %+v\nwant %+v", opts, res, ref)
		}
		if !reflect.DeepEqual(st, refSt) {
			t.Errorf("%+v: live Stats diverged:\n got %+v\nwant %+v", opts, st, refSt)
		}
	}
}

// TestWorkerPoolRace floods a wide worker pool from a wide shard fan-out;
// run under -race this exercises the pending-sample settlement protocol.
func TestWorkerPoolRace(t *testing.T) {
	p := suiteProfile(t, "164.gzip", 5_000_000)
	cfg := testConfig()
	cfg.FFOps = 10_000
	cfg.SpreadOps = 10_000
	res, _, err := Run(context.Background(), NewProfileSource(p), cfg, Options{Shards: 8, SampleWorkers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples == 0 {
		t.Error("no samples taken")
	}
}

// TestCancellation: a cancelled context aborts with the serial error shape
// (ErrBudgetExceeded class, partial ledger) and leaks no goroutines
// blocked on unresolved samples.
func TestCancellation(t *testing.T) {
	p := suiteProfile(t, "164.gzip", 5_000_000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := Run(ctx, NewProfileSource(p), testConfig(), Options{Shards: 4, SampleWorkers: 4})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if !errors.Is(err, pgsserrors.ErrBudgetExceeded) {
		t.Errorf("cancellation error %v not classed ErrBudgetExceeded", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancellation error %v does not wrap context.Canceled", err)
	}
}

// failingSource injects a sampler failure to verify the error surfaces
// from the decision walk instead of hanging the pool.
type failingSource struct {
	*ProfileSource
	after int
}

type failingSampler struct {
	inner Sampler
	n     *int
	after int
}

func (s *failingSource) NewSampler() (Sampler, error) {
	inner, err := s.ProfileSource.NewSampler()
	if err != nil {
		return nil, err
	}
	n := 0
	return &failingSampler{inner: inner, n: &n, after: s.after}, nil
}

func (s *failingSampler) Sample(pos, warm, sample uint64) (float64, error) {
	*s.n++
	if *s.n > s.after {
		return 0, errors.New("injected sampler failure")
	}
	return s.inner.Sample(pos, warm, sample)
}

func TestSamplerErrorPropagates(t *testing.T) {
	p := suiteProfile(t, "164.gzip", 5_000_000)
	src := &failingSource{ProfileSource: NewProfileSource(p), after: 2}
	_, _, err := Run(context.Background(), src, testConfig(), Options{Shards: 2, SampleWorkers: 1})
	if err == nil || err.Error() != "injected sampler failure" {
		t.Fatalf("injected failure did not surface: %v", err)
	}
}

// TestMisalignedConfigSurfaces: a window size that is not a multiple of
// the profile granularity must fail with the serial error class.
func TestMisalignedConfigSurfaces(t *testing.T) {
	p := suiteProfile(t, "164.gzip", 5_000_000)
	cfg := testConfig()
	cfg.FFOps = 12_345
	_, _, err := Run(context.Background(), NewProfileSource(p), cfg, Options{Shards: 2, SampleWorkers: 2})
	if !errors.Is(err, pgsserrors.ErrMisalignedWindow) {
		t.Fatalf("misaligned window error class: %v", err)
	}
}

// TestChannelParallelMatchesSerial extends the serial/parallel bit-identity
// guarantee to the MAV and concatenated signature channels: with the
// profile recorded on both channels, the parallel engine must reproduce the
// serial controller exactly under every shard layout, for every Channel.
func TestChannelParallelMatchesSerial(t *testing.T) {
	p := suiteProfile(t, "181.mcf", 10_000_000)
	if !p.HasMAV() {
		t.Fatal("suite profile recorded without a MAV channel")
	}
	for _, ch := range []bbv.Channel{bbv.ChannelMAV, bbv.ChannelBoth} {
		t.Run(ch.String(), func(t *testing.T) {
			cfg := testConfig()
			cfg.Channel = ch
			cfg.Trace = true
			wantRes, wantSt, err := core.Run(sampling.NewProfileTarget(p), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if wantRes.Samples == 0 {
				t.Fatal("serial run took no samples — the identity test would be vacuous")
			}
			for _, opts := range []Options{
				{Shards: 1, SampleWorkers: 1},
				{Shards: 4, SampleWorkers: 4},
				{Shards: 3, SampleWorkers: 2},
				{Shards: 7, SampleWorkers: 3},
			} {
				res, st, err := Run(context.Background(), NewProfileSource(p), cfg, opts)
				if err != nil {
					t.Fatalf("%+v: %v", opts, err)
				}
				if !reflect.DeepEqual(res, wantRes) {
					t.Errorf("%+v: Result diverged from serial:\n got %+v\nwant %+v", opts, res, wantRes)
				}
				if !reflect.DeepEqual(st, wantSt) {
					t.Errorf("%+v: Stats diverged from serial:\n got %+v\nwant %+v", opts, st, wantSt)
				}
			}
		})
	}
}

// TestLiveChannelShardInvariant: a live run on the concatenated channel —
// MAV tracker fed from the retire stream inside each shard — returns the
// same result whatever the shard layout. MAV accumulation has no pending
// state, so the windows are layout-invariant by construction; this pins the
// wiring.
func TestLiveChannelShardInvariant(t *testing.T) {
	src := liveSource(t, "197.parser", 600_000, 50_000)
	src.EnableMAV(bbv.MustNewMAVHash(bbv.DefaultMAVBits, 42))
	cfg := testConfig()
	cfg.FFOps = 20_000
	cfg.SpreadOps = 20_000
	cfg.Trace = true
	cfg.Channel = bbv.ChannelBoth

	ref, refSt, err := Run(context.Background(), src, cfg, Options{Shards: 1, SampleWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Samples == 0 {
		t.Fatal("live run took no samples — the invariance test would be vacuous")
	}
	for _, opts := range []Options{
		{Shards: 4, SampleWorkers: 4},
		{Shards: 3, SampleWorkers: 2},
		{Shards: 7, SampleWorkers: 3},
	} {
		res, st, err := Run(context.Background(), src, cfg, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if !reflect.DeepEqual(res, ref) {
			t.Errorf("%+v: live Result diverged:\n got %+v\nwant %+v", opts, res, ref)
		}
		if !reflect.DeepEqual(st, refSt) {
			t.Errorf("%+v: live Stats diverged:\n got %+v\nwant %+v", opts, st, refSt)
		}
	}
}
