package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func smallCache(t *testing.T) *Cache {
	t.Helper()
	// 4 sets × 2 ways × 64 B lines = 512 B.
	return MustNew(Config{Name: "t", SizeBytes: 512, Ways: 2, LineBytes: 64})
}

func TestGeometryValidation(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, Ways: 1, LineBytes: 64},
		{SizeBytes: 100, Ways: 1, LineBytes: 64},    // not divisible
		{SizeBytes: 3 * 64, Ways: 1, LineBytes: 64}, // sets not pow2
		{SizeBytes: 512, Ways: 2, LineBytes: 48},    // line not pow2
		{SizeBytes: -1, Ways: 2, LineBytes: 64},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("accepted bad geometry %+v", cfg)
		}
	}
	c := smallCache(t)
	if c.Sets() != 4 || c.Ways() != 2 || c.LineBytes() != 64 {
		t.Errorf("geometry: sets=%d ways=%d line=%d", c.Sets(), c.Ways(), c.LineBytes())
	}
}

func TestMissThenHit(t *testing.T) {
	c := smallCache(t)
	if r := c.Access(0x1000, false); r.Hit {
		t.Error("cold access hit")
	}
	if r := c.Access(0x1000, false); !r.Hit {
		t.Error("second access missed")
	}
	// Same line, different offset.
	if r := c.Access(0x103f, false); !r.Hit {
		t.Error("same-line access missed")
	}
	// Next line.
	if r := c.Access(0x1040, false); r.Hit {
		t.Error("next-line access hit")
	}
	st := c.Stats()
	if st.Accesses != 4 || st.Misses != 2 {
		t.Errorf("stats: %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := smallCache(t)
	// Three lines in the same set (set = bits above line offset, 4 sets).
	a, b1, b2 := uint64(0x0000), uint64(0x0100), uint64(0x0200) // all set 0
	c.Access(a, false)
	c.Access(b1, false)
	c.Access(a, false) // a now MRU
	r := c.Access(b2, false)
	if r.Hit {
		t.Error("b2 should miss")
	}
	// b1 (LRU) must have been evicted, a retained.
	if !c.Contains(a) {
		t.Error("MRU line evicted")
	}
	if c.Contains(b1) {
		t.Error("LRU line retained")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := smallCache(t)
	c.Access(0x0000, true) // dirty
	c.Access(0x0100, false)
	r := c.Access(0x0200, false) // evicts 0x0000
	if !r.Writeback || r.WritebackAddr != 0x0000 {
		t.Errorf("expected writeback of 0x0000, got %+v", r)
	}
	st := c.Stats()
	if st.Writebacks != 1 || st.Evictions != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	c := smallCache(t)
	c.Access(0x0000, false)
	c.Access(0x0100, false)
	if r := c.Access(0x0200, false); r.Writeback {
		t.Error("clean eviction produced writeback")
	}
}

func TestFlush(t *testing.T) {
	c := smallCache(t)
	c.Access(0x0000, true)
	c.Flush()
	if c.Contains(0x0000) {
		t.Error("flush left line resident")
	}
	if r := c.Access(0x0000, false); r.Hit || r.Writeback {
		t.Errorf("post-flush access: %+v", r)
	}
}

func TestContainsDoesNotDisturb(t *testing.T) {
	c := smallCache(t)
	c.Access(0x0000, false)
	c.Access(0x0100, false)
	before := c.Stats()
	for i := 0; i < 10; i++ {
		c.Contains(0x0000)
	}
	if c.Stats() != before {
		t.Error("Contains changed stats")
	}
	// LRU undisturbed: 0x0000 is still LRU and must be evicted next.
	c.Access(0x0200, false)
	if c.Contains(0x0000) {
		t.Error("Contains refreshed LRU state")
	}
}

// Property: a cache with S sets and W ways retains the last W distinct
// lines mapped to one set, and any access within them hits.
func TestPropertyWorkingSetRetention(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := MustNew(Config{Name: "p", SizeBytes: 2048, Ways: 4, LineBytes: 64})
		// 8 sets; pick one set and W distinct lines in it.
		set := uint64(rng.Intn(8))
		lines := make([]uint64, 4)
		for i := range lines {
			lines[i] = (uint64(i*8)+set)*64 + uint64(rng.Intn(64)) // distinct tags, same set
		}
		for _, a := range lines {
			c.Access(a, false)
		}
		for _, a := range lines {
			if !c.Contains(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: miss count never exceeds access count, and after any access
// the line is resident.
func TestPropertyAccessInvariants(t *testing.T) {
	f := func(addrs []uint16, writes []bool) bool {
		c := smallCache(&testing.T{})
		for i, a := range addrs {
			w := i < len(writes) && writes[i]
			c.Access(uint64(a), w)
			if !c.Contains(uint64(a)) {
				return false
			}
		}
		st := c.Stats()
		return st.Misses <= st.Accesses && st.Writebacks <= st.Evictions
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := DefaultHierarchy()
	// Cold load: memory latency.
	if lat := h.Load(0x5000); lat != h.Lat.Mem {
		t.Errorf("cold load latency %d, want %d", lat, h.Lat.Mem)
	}
	// Now resident in both L1 and L2: L1 hit.
	if lat := h.Load(0x5000); lat != h.Lat.L1 {
		t.Errorf("warm load latency %d, want %d", lat, h.Lat.L1)
	}
	if h.MemAccesses != 1 {
		t.Errorf("mem accesses = %d", h.MemAccesses)
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	h := DefaultHierarchy()
	h.Load(0x5000)
	// Evict from L1 by filling its set (L1D: 64KB/4way/64B = 256 sets →
	// same set every 16 KB).
	for i := 1; i <= 4; i++ {
		h.Load(0x5000 + uint64(i)*16*1024)
	}
	if h.L1D.Contains(0x5000) {
		t.Skip("L1 set not exhausted; geometry changed")
	}
	if lat := h.Load(0x5000); lat != h.Lat.L2 {
		t.Errorf("L2 hit latency %d, want %d", lat, h.Lat.L2)
	}
}

func TestHierarchySplitIAndD(t *testing.T) {
	h := DefaultHierarchy()
	h.Fetch(0x9000)
	if h.L1D.Contains(0x9000) {
		t.Error("instruction fetch landed in L1D")
	}
	if !h.L1I.Contains(0x9000) {
		t.Error("instruction fetch missing from L1I")
	}
	h.Warm(0x9000, false, false)
	if !h.L1D.Contains(0x9000) {
		t.Error("warm data access missing from L1D")
	}
}

func TestHierarchyDirtyL1VictimGoesToL2(t *testing.T) {
	h := DefaultHierarchy()
	h.Store(0x5000)
	for i := 1; i <= 4; i++ {
		h.Load(0x5000 + uint64(i)*16*1024)
	}
	// The dirty victim must be in L2 now.
	if !h.L2.Contains(0x5000) {
		t.Error("dirty L1 victim not written back into L2")
	}
}

func TestHierarchyFlush(t *testing.T) {
	h := DefaultHierarchy()
	h.Load(0x5000)
	h.Flush()
	if h.L1D.Contains(0x5000) || h.L2.Contains(0x5000) || h.MemAccesses != 0 {
		t.Error("flush incomplete")
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("idle miss rate nonzero")
	}
	s = Stats{Accesses: 4, Misses: 1}
	if s.MissRate() != 0.25 {
		t.Errorf("miss rate = %g", s.MissRate())
	}
}
