// Package cache implements set-associative caches and the two-level
// hierarchy used by the simulated processor: split 4-way 64 KB L1
// instruction and data caches over a unified 1 MB L2, matching the
// configuration in the paper's evaluation (§5).
//
// The model is a timing/contents model: it tracks which lines are resident
// (for hit/miss decisions and warming) and returns access latencies, but it
// does not store data — the functional simulator owns program data.
package cache

import (
	"fmt"
	"math/bits"
)

// Stats counts accesses for one cache.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
}

// MissRate returns misses/accesses, or 0 when idle.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is one level of set-associative cache with true-LRU replacement and
// a write-back, write-allocate policy.
type Cache struct {
	name     string
	ways     int
	sets     int
	lineBits uint
	setMask  uint64

	// tags[set*ways+way]; valid bit folded in (0 = invalid).
	tags []uint64
	// lru[set*ways+way] holds a per-set stamp; larger = more recent.
	lru   []uint64
	dirty []bool
	clock uint64

	stats Stats
}

// Config describes one cache level.
type Config struct {
	Name      string
	SizeBytes int
	Ways      int
	LineBytes int
}

// New builds a cache. Size, ways and line size must be powers of two with
// SizeBytes = sets*ways*LineBytes for some power-of-two set count.
func New(cfg Config) (*Cache, error) {
	if cfg.SizeBytes <= 0 || cfg.Ways <= 0 || cfg.LineBytes <= 0 {
		return nil, fmt.Errorf("cache %s: nonpositive geometry %+v", cfg.Name, cfg)
	}
	if cfg.SizeBytes%(cfg.Ways*cfg.LineBytes) != 0 {
		return nil, fmt.Errorf("cache %s: size %d not divisible by ways*line %d",
			cfg.Name, cfg.SizeBytes, cfg.Ways*cfg.LineBytes)
	}
	sets := cfg.SizeBytes / (cfg.Ways * cfg.LineBytes)
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache %s: set count %d not a power of two", cfg.Name, sets)
	}
	if cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		return nil, fmt.Errorf("cache %s: line size %d not a power of two", cfg.Name, cfg.LineBytes)
	}
	c := &Cache{
		name:     cfg.Name,
		ways:     cfg.Ways,
		sets:     sets,
		lineBits: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:  uint64(sets - 1),
		tags:     make([]uint64, sets*cfg.Ways),
		lru:      make([]uint64, sets*cfg.Ways),
		dirty:    make([]bool, sets*cfg.Ways),
	}
	return c, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns the cache's configured name.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// LineBytes returns the line size in bytes.
func (c *Cache) LineBytes() int { return 1 << c.lineBits }

// Stats returns a copy of the access counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters without touching contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// lineTag returns the tag (line address) for addr; tags store the full line
// address + 1 so that 0 can mean "invalid".
func (c *Cache) lineTag(addr uint64) uint64 { return (addr >> c.lineBits) + 1 }

func (c *Cache) set(addr uint64) int {
	return int((addr >> c.lineBits) & c.setMask)
}

// AccessResult describes the outcome of one cache access.
type AccessResult struct {
	Hit bool
	// WritebackAddr is the line address (byte address of line start) of a
	// dirty line evicted by this access; Writeback reports whether one
	// occurred.
	Writeback     bool
	WritebackAddr uint64
}

// Access looks up addr, allocating the line on miss (write-allocate). write
// marks the line dirty. The returned result reports hit/miss and any dirty
// eviction.
func (c *Cache) Access(addr uint64, write bool) AccessResult {
	c.stats.Accesses++
	c.clock++
	tag := c.lineTag(addr)
	base := c.set(addr) * c.ways
	victim := base
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == tag {
			c.lru[i] = c.clock
			if write {
				c.dirty[i] = true
			}
			return AccessResult{Hit: true}
		}
		if c.lru[i] < c.lru[victim] {
			victim = i
		}
	}
	// Miss: fill over the LRU way.
	c.stats.Misses++
	res := AccessResult{}
	if c.tags[victim] != 0 {
		c.stats.Evictions++
		if c.dirty[victim] {
			c.stats.Writebacks++
			res.Writeback = true
			res.WritebackAddr = (c.tags[victim] - 1) << c.lineBits
		}
	}
	c.tags[victim] = tag
	c.lru[victim] = c.clock
	c.dirty[victim] = write
	return res
}

// Contains reports whether the line holding addr is resident, without
// disturbing LRU state or statistics.
func (c *Cache) Contains(addr uint64) bool {
	tag := c.lineTag(addr)
	base := c.set(addr) * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == tag {
			return true
		}
	}
	return false
}

// State is a serialisable snapshot of a cache's contents (see the
// checkpoint package).
type State struct {
	Tags  []uint64
	LRU   []uint64
	Dirty []bool
	Clock uint64
	Stats Stats
}

// Snapshot captures the cache's contents and statistics.
func (c *Cache) Snapshot() State {
	return State{
		Tags:  append([]uint64(nil), c.tags...),
		LRU:   append([]uint64(nil), c.lru...),
		Dirty: append([]bool(nil), c.dirty...),
		Clock: c.clock,
		Stats: c.stats,
	}
}

// Restore reinstates a snapshot taken from a cache of identical geometry.
func (c *Cache) Restore(s State) error {
	if len(s.Tags) != len(c.tags) {
		return fmt.Errorf("cache %s: snapshot geometry %d lines, cache has %d",
			c.name, len(s.Tags), len(c.tags))
	}
	copy(c.tags, s.Tags)
	copy(c.lru, s.LRU)
	copy(c.dirty, s.Dirty)
	c.clock = s.Clock
	c.stats = s.Stats
	return nil
}

// Flush invalidates all lines and clears dirty bits (stats are kept).
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = 0
		c.lru[i] = 0
		c.dirty[i] = false
	}
	c.clock = 0
}

// Latencies gives the load-to-use latency (in cycles) of each hierarchy
// level. These are the values used by the detailed timing model.
type Latencies struct {
	L1  uint64
	L2  uint64
	Mem uint64
}

// DefaultLatencies mirrors a modest early-2000s memory hierarchy.
var DefaultLatencies = Latencies{L1: 2, L2: 12, Mem: 150}

// Hierarchy is the processor's two-level cache system: split L1 I/D over a
// unified L2.
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	L2  *Cache
	Lat Latencies

	// MemAccesses counts L2 misses (trips to memory).
	MemAccesses uint64
}

// HierarchyConfig sizes the three caches.
type HierarchyConfig struct {
	L1I, L1D, L2 Config
	Lat          Latencies
}

// DefaultHierarchyConfig is the paper's configuration: split 4-way 64 KB L1
// caches and a unified 1 MB L2 (8-way here), 64-byte lines.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1I: Config{Name: "L1I", SizeBytes: 64 << 10, Ways: 4, LineBytes: 64},
		L1D: Config{Name: "L1D", SizeBytes: 64 << 10, Ways: 4, LineBytes: 64},
		L2:  Config{Name: "L2", SizeBytes: 1 << 20, Ways: 8, LineBytes: 64},
		Lat: DefaultLatencies,
	}
}

// NewHierarchy builds the hierarchy.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	l2, err := New(cfg.L2)
	if err != nil {
		return nil, err
	}
	return NewSharedHierarchy(cfg, l2)
}

// NewSharedHierarchy builds a hierarchy whose L2 is the given (possibly
// shared) cache — the chip-multiprocessor configuration, where each core
// owns private L1s over one shared L2. The caller simulates cores
// interleaved on one goroutine; the caches are not safe for concurrent
// use.
func NewSharedHierarchy(cfg HierarchyConfig, l2 *Cache) (*Hierarchy, error) {
	if l2 == nil {
		return nil, fmt.Errorf("cache: nil shared L2")
	}
	l1i, err := New(cfg.L1I)
	if err != nil {
		return nil, err
	}
	l1d, err := New(cfg.L1D)
	if err != nil {
		return nil, err
	}
	lat := cfg.Lat
	if lat == (Latencies{}) {
		lat = DefaultLatencies
	}
	return &Hierarchy{L1I: l1i, L1D: l1d, L2: l2, Lat: lat}, nil
}

// MustNewHierarchy is NewHierarchy that panics on error.
func MustNewHierarchy(cfg HierarchyConfig) *Hierarchy {
	h, err := NewHierarchy(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// DefaultHierarchy returns the paper-configured hierarchy.
func DefaultHierarchy() *Hierarchy { return MustNewHierarchy(DefaultHierarchyConfig()) }

// access runs one L1 access backed by L2 and returns the latency.
func (h *Hierarchy) access(l1 *Cache, addr uint64, write bool) uint64 {
	r1 := l1.Access(addr, write)
	if r1.Hit {
		return h.Lat.L1
	}
	if r1.Writeback {
		// Dirty L1 victim written back into L2 (allocate there).
		h.L2.Access(r1.WritebackAddr, true)
	}
	r2 := h.L2.Access(addr, false)
	if r2.Hit {
		return h.Lat.L2
	}
	h.MemAccesses++
	return h.Lat.Mem
}

// Fetch models an instruction fetch of addr and returns its latency.
func (h *Hierarchy) Fetch(addr uint64) uint64 { return h.access(h.L1I, addr, false) }

// Load models a data load and returns its latency.
func (h *Hierarchy) Load(addr uint64) uint64 { return h.access(h.L1D, addr, false) }

// Store models a data store and returns its latency.
func (h *Hierarchy) Store(addr uint64) uint64 { return h.access(h.L1D, addr, true) }

// Warm touches the hierarchy exactly as Fetch/Load/Store do but is named
// separately for call sites in functional-warming mode, where latencies are
// discarded. write marks data stores; instr selects the I-side.
func (h *Hierarchy) Warm(addr uint64, write, instr bool) {
	if instr {
		h.access(h.L1I, addr, false)
		return
	}
	h.access(h.L1D, addr, write)
}

// Flush invalidates all levels.
func (h *Hierarchy) Flush() {
	h.L1I.Flush()
	h.L1D.Flush()
	h.L2.Flush()
	h.MemAccesses = 0
}
