// Command pgss-artifacts manages a content-addressed artifact store: the
// on-disk cache of recorded profiles and checkpoint libraries that
// campaigns share across runs and processes (see internal/artifact).
//
// Usage:
//
//	pgss-artifacts -root .pgss-artifacts ls            # list artifacts
//	pgss-artifacts -root .pgss-artifacts verify        # audit + repair
//	pgss-artifacts -root .pgss-artifacts gc -max 256MB # LRU-evict to a budget
//	pgss-artifacts -root .pgss-artifacts pin <hash>    # protect from GC
//	pgss-artifacts -root .pgss-artifacts unpin <hash>
//
// The exit code is 0 on success; verify exits 1 when it had to repair
// anything (so CI can flag a store that keeps rotting).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pgss/internal/artifact"
)

func main() {
	root := flag.String("root", ".pgss-artifacts", "artifact store root directory")
	verbose := flag.Bool("v", false, "print store diagnostics")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, a ...any) { fmt.Fprintf(os.Stderr, format, a...) }
	}
	st, err := artifact.Open(*root, artifact.Options{Logf: logf})
	if err != nil {
		fatal(err)
	}

	switch cmd, rest := args[0], args[1:]; cmd {
	case "ls":
		ls(st)
	case "verify":
		verify(st)
	case "gc":
		gc(st, rest)
	case "pin", "unpin":
		pin(st, cmd, rest)
	default:
		fmt.Fprintf(os.Stderr, "pgss-artifacts: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
}

func ls(st *artifact.Store) {
	entries := st.List()
	for _, e := range entries {
		key := e.Key.String()
		if e.Recovered {
			key = string(e.Key.Kind) + " (recovered)"
		}
		pin := ""
		if e.Refs > 0 {
			pin = fmt.Sprintf("  pinned×%d", e.Refs)
		}
		fmt.Printf("%s  %10s  gen %4d  %s%s\n",
			e.Hash[:12], sizeStr(e.Size), e.LastUseGen, key, pin)
	}
	fmt.Printf("%d artifacts, %s\n", len(entries), sizeStr(st.TotalBytes()))
}

func verify(st *artifact.Store) {
	rep, err := st.Verify()
	if err != nil {
		fatal(err)
	}
	fmt.Println(rep)
	for _, h := range rep.Corrupt {
		fmt.Printf("  corrupt (deleted): %s\n", h[:12])
	}
	for _, h := range rep.Missing {
		fmt.Printf("  missing object (entry dropped): %s\n", h[:12])
	}
	for _, h := range rep.Adopted {
		fmt.Printf("  adopted unindexed object: %s\n", h[:12])
	}
	if len(rep.Corrupt)+len(rep.Missing) > 0 || rep.TmpSwept > 0 {
		os.Exit(1)
	}
}

func gc(st *artifact.Store, args []string) {
	fs := flag.NewFlagSet("gc", flag.ExitOnError)
	max := fs.String("max", "1GB", "store size budget (e.g. 512MB, 2GB, or bytes)")
	fs.Parse(args)
	budget, err := parseSize(*max)
	if err != nil {
		fatal(err)
	}
	stats, err := st.GC(budget)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("scanned %d, evicted %d (%s freed), %d pinned, %s kept\n",
		stats.Scanned, stats.Evicted, sizeStr(stats.BytesFreed), stats.Pinned, sizeStr(stats.BytesKept))
}

func pin(st *artifact.Store, cmd string, args []string) {
	if len(args) != 1 {
		fatal(fmt.Errorf("%s needs exactly one artifact hash (or unique prefix)", cmd))
	}
	hash, err := resolveHash(st, args[0])
	if err != nil {
		fatal(err)
	}
	if cmd == "pin" {
		err = st.Pin(hash)
	} else {
		err = st.Unpin(hash)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%sned %s\n", cmd, hash[:12])
}

// resolveHash expands a unique hash prefix to the full address.
func resolveHash(st *artifact.Store, prefix string) (string, error) {
	var match string
	for _, e := range st.List() {
		if strings.HasPrefix(e.Hash, prefix) {
			if match != "" {
				return "", fmt.Errorf("prefix %q is ambiguous", prefix)
			}
			match = e.Hash
		}
	}
	if match == "" {
		return "", fmt.Errorf("no artifact matches %q", prefix)
	}
	return match, nil
}

func parseSize(s string) (int64, error) {
	u := strings.ToUpper(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(u, "GB"):
		mult, u = 1<<30, strings.TrimSuffix(u, "GB")
	case strings.HasSuffix(u, "MB"):
		mult, u = 1<<20, strings.TrimSuffix(u, "MB")
	case strings.HasSuffix(u, "KB"):
		mult, u = 1<<10, strings.TrimSuffix(u, "KB")
	}
	n, err := strconv.ParseInt(strings.TrimSpace(u), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}

func sizeStr(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: pgss-artifacts [-root DIR] [-v] COMMAND

Commands:
  ls            list artifacts (hash, size, last-use generation, key)
  verify        audit every object, repair the index, sweep leftovers
  gc [-max N]   evict least-recently-used unpinned artifacts to a budget
  pin HASH      protect an artifact from gc (prefix ok)
  unpin HASH    release a pin
`)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pgss-artifacts:", err)
	os.Exit(1)
}
