// Command pgss-workload lists and inspects the synthetic benchmark suite:
// it builds a benchmark, records its detailed profile and prints the
// whole-program IPC, interval statistics and phase-visibility summary.
//
// Usage:
//
//	pgss-workload -list
//	pgss-workload -bench 164.gzip -ops 10000000 [-gran 100000] [-series]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pgss/internal/bbv"
	"pgss/internal/cpu"
	"pgss/internal/profile"
	"pgss/internal/stats"
	"pgss/internal/workload"
)

func main() {
	list := flag.Bool("list", false, "list available benchmarks")
	bench := flag.String("bench", "", "benchmark to inspect")
	ops := flag.Uint64("ops", 0, "program length in ops (0 = benchmark default)")
	gran := flag.Uint64("gran", 100_000, "interval granularity for the IPC series")
	series := flag.Bool("series", false, "print the full IPC series")
	flag.Parse()

	if *list || *bench == "" {
		fmt.Println("available benchmarks:")
		for _, n := range workload.Names() {
			s, _ := workload.Get(n)
			fmt.Printf("  %-14s %d kernels, default %d ops\n", n, len(s.Kernels), s.DefaultOps)
		}
		return
	}

	spec, err := workload.Get(*bench)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	prog, err := spec.Build(*ops)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("built %s: %d instructions, %d data words (%.1f MB) in %v\n",
		prog.Name, len(prog.Code), prog.DataWords, float64(prog.DataWords)*8/1e6,
		time.Since(start).Round(time.Millisecond))

	m := cpu.MustNewMachine(prog)
	core, err := cpu.NewCore(m, cpu.DefaultCoreConfig())
	if err != nil {
		fatal(err)
	}
	hash := bbv.MustNewHash(bbv.DefaultHashBits, 42)
	start = time.Now()
	p, err := profile.Record(core, hash, profile.DefaultConfig())
	if err != nil {
		fatal(err)
	}
	dur := time.Since(start)
	fmt.Printf("recorded: %d ops, %d cycles, IPC=%.4f (%.1f Mops/s detailed)\n",
		p.TotalOps, p.TotalCycles, p.TrueIPC(), float64(p.TotalOps)/dur.Seconds()/1e6)
	fmt.Printf("caches: L1I %.2f%% L1D %.2f%% L2 %.2f%% miss; branches %.2f%% mispredicted; wild=%d\n",
		core.Hier.L1I.Stats().MissRate()*100, core.Hier.L1D.Stats().MissRate()*100,
		core.Hier.L2.Stats().MissRate()*100, core.BP.Stats().MispredictRate()*100,
		m.WildAccesses)

	ipcs, err := p.IPCSeries(*gran)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("interval IPC @%d ops: n=%d mean=%.4f σ=%.4f min=%.4f p50=%.4f max=%.4f\n",
		*gran, len(ipcs), stats.Mean(ipcs), stats.StdDev(ipcs),
		stats.Percentile(ipcs, 0), stats.Percentile(ipcs, 50), stats.Percentile(ipcs, 100))
	if *series {
		for i, x := range ipcs {
			fmt.Printf("%12d %.4f\n", uint64(i)**gran, x)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pgss-workload:", err)
	os.Exit(1)
}
