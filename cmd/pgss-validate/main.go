// Command pgss-validate runs the differential validation harness: seeded
// machine-generated workloads and PGSS configurations, each executed through
// a full detailed oracle run, the serial controller, the checkpoint-sharded
// parallel engine under several shard layouts, and (periodically) the
// live-source engine, with every hard and statistical invariant checked.
//
// Usage:
//
//	pgss-validate -cases 200 -seed 1          # the standard acceptance run
//	pgss-validate -cases 50 -json             # machine-readable report
//	pgss-validate -replay 137                 # re-run one failing case
//	pgss-validate -cases 500 -journal v.jsonl -resume
//
// The exit code is 0 only if every invariant held. Every violation in the
// report carries the minimal failing seed; `pgss-validate -replay <seed>`
// reproduces exactly that case (with the live check forced on).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"pgss/internal/parallel"
	"pgss/internal/validate"
)

func main() {
	def := validate.DefaultOptions()
	cases := flag.Int("cases", def.Cases, "number of generated cases")
	seed := flag.Int64("seed", def.Seed, "base seed; case i uses seed+i")
	jobs := flag.Int("jobs", 0, "parallel workers (0 = GOMAXPROCS)")
	layouts := flag.String("layouts", "", "shard layouts to check, e.g. 1x1,4x4,3x2,7x3 (default: built-in set)")
	liveEvery := flag.Int("live-every", def.LiveEvery, "run the live-source check on every n-th case (0 disables)")
	meanBound := flag.Float64("max-mean-err", def.MaxMeanErrPct, "bound on mean |IPC error| vs oracle, percent")
	caseBound := flag.Float64("max-case-err", def.MaxCaseErrPct, "tripwire on any single case's |IPC error|, percent")
	jsonOut := flag.Bool("json", false, "emit the full report as JSON on stdout")
	journal := flag.String("journal", "", "journal case outcomes to this JSONL file")
	resume := flag.Bool("resume", false, "skip cases already journaled as passed")
	replay := flag.Int64("replay", 0, "re-run the single case with this seed (live check on) and exit")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	lay, err := parseLayouts(*layouts)
	if err != nil {
		fatal(err)
	}

	if *replay != 0 {
		cr, err := validate.Replay(ctx, *replay, lay)
		if err != nil {
			fatal(err)
		}
		validate.FprintCase(os.Stdout, cr)
		if len(cr.Violations) > 0 {
			os.Exit(1)
		}
		return
	}

	opts := def
	opts.Cases = *cases
	opts.Seed = *seed
	opts.Jobs = *jobs
	opts.Layouts = lay
	opts.LiveEvery = *liveEvery
	opts.MaxMeanErrPct = *meanBound
	opts.MaxCaseErrPct = *caseBound
	opts.JournalPath = *journal
	opts.Resume = *resume
	if !*quiet {
		opts.Logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format, args...) }
	}

	rep, err := validate.Run(ctx, opts)
	if err != nil {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "pgss-validate: interrupted; re-run with -journal/-resume to continue")
			os.Exit(130)
		}
		fatal(err)
	}
	if *jsonOut {
		out, err := rep.JSON()
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(out)
	} else {
		rep.Fprint(os.Stdout)
	}
	if !rep.OK {
		os.Exit(1)
	}
}

// parseLayouts parses "4x4,3x2" into parallel options ("" = defaults).
func parseLayouts(s string) ([]parallel.Options, error) {
	if s == "" {
		return nil, nil
	}
	var out []parallel.Options
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		sw := strings.SplitN(part, "x", 2)
		if len(sw) != 2 {
			return nil, fmt.Errorf("bad layout %q: want <shards>x<workers>", part)
		}
		shards, err1 := strconv.Atoi(sw[0])
		workers, err2 := strconv.Atoi(sw[1])
		if err1 != nil || err2 != nil || shards < 1 || workers < 1 {
			return nil, fmt.Errorf("bad layout %q: want <shards>x<workers>", part)
		}
		out = append(out, parallel.Options{Shards: shards, SampleWorkers: workers})
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pgss-validate:", err)
	os.Exit(1)
}
