// Command pgss-lint runs the repository's custom static-analysis suite:
// determinism, error-taxonomy and concurrency invariants the generic
// toolchain cannot know about (see internal/analysis).
//
// Usage:
//
//	pgss-lint [flags] [packages]
//
// With no package arguments it analyzes ./.... Exit status is 1 when any
// diagnostic survives suppression filtering, 2 on operational failure.
// -fix applies the suggested fixes analyzers attach (errwrap's %v→%w
// rewrite, exhaustive's missing-case insertion), atomically and
// gofmt-verified; -fix -diff prints the edits as a unified diff without
// writing. Findings are suppressed in source with
//
//	//pgss:allow <analyzer> <reason>
//
// on (or directly above) the offending line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"pgss/internal/analysis"
	"pgss/internal/analysis/registry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("pgss-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list    = fs.Bool("list", false, "list analyzers and exit")
		only    = fs.String("only", "", "comma-separated analyzers to run (default: all)")
		skip    = fs.String("skip", "", "comma-separated analyzers to skip")
		jsonOut = fs.Bool("json", false, "emit diagnostics as JSON")
		dir     = fs.String("C", ".", "change to `dir` before resolving patterns")
		fix     = fs.Bool("fix", false, "apply suggested fixes to the source files")
		diff    = fs.Bool("diff", false, "with -fix: print the edits as a unified diff instead of writing")
		verbose = fs.Bool("v", false, "log per-package progress")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, an := range registry.All() {
			fmt.Fprintf(stdout, "%-15s %s\n", an.Name, an.Doc)
		}
		fmt.Fprintf(stdout, "\nengine scope: %s\n", strings.Join(analysis.EnginePaths(), " "))
		fmt.Fprintf(stdout, "flow scope:   %s pgss/cmd/...\n", strings.Join(analysis.FlowPaths(), " "))
		return 0
	}
	analyzers, err := selectAnalyzers(*only, *skip)
	if err != nil {
		fmt.Fprintf(stderr, "pgss-lint: %v\n", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.NewLoader().Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "pgss-lint: %v\n", err)
		return 2
	}

	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		if *verbose {
			fmt.Fprintf(stderr, "pgss-lint: %s\n", pkg.Path)
		}
		for _, an := range analyzers {
			ds, err := analysis.RunAnalyzer(an, pkg)
			if err != nil {
				fmt.Fprintf(stderr, "pgss-lint: %v\n", err)
				return 2
			}
			diags = append(diags, ds...)
		}
	}

	if *fix || *diff {
		outcome, err := analysis.ApplyFixes(diags)
		if err != nil {
			fmt.Fprintf(stderr, "pgss-lint: %v\n", err)
			return 2
		}
		if *diff {
			// Dry run: render the edits, resolve nothing. Findings keep
			// their normal reporting and exit status below.
			for _, filename := range sortedFilenames(outcome.Files) {
				oldSrc, err := os.ReadFile(filename)
				if err != nil {
					fmt.Fprintf(stderr, "pgss-lint: %v\n", err)
					return 2
				}
				display := filename
				if wd, err := os.Getwd(); err == nil {
					if rel, err := filepath.Rel(wd, filename); err == nil && !strings.HasPrefix(rel, "..") {
						display = rel
					}
				}
				fmt.Fprint(stdout, analysis.Unified(display, oldSrc, outcome.Files[filename]))
			}
		} else {
			if err := analysis.WriteFiles(outcome.Files); err != nil {
				fmt.Fprintf(stderr, "pgss-lint: %v\n", err)
				return 2
			}
			if outcome.Applied > 0 {
				fmt.Fprintf(stderr, "pgss-lint: applied %d fix(es) in %d file(s)\n",
					outcome.Applied, len(outcome.Files))
			}
			// Fixed findings are resolved; unfixable and overlap-skipped
			// ones remain (a re-run picks skipped ones up).
			var remaining []analysis.Diagnostic
			for _, d := range diags {
				if d.Fix == nil {
					remaining = append(remaining, d)
				}
			}
			remaining = append(remaining, outcome.Skipped...)
			diags = remaining
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "pgss-lint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "pgss-lint: %d finding(s) across %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

func sortedFilenames(files map[string][]byte) []string {
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func selectAnalyzers(only, skip string) ([]*analysis.Analyzer, error) {
	analyzers := registry.All()
	if only != "" {
		var picked []*analysis.Analyzer
		for _, name := range strings.Split(only, ",") {
			an := registry.ByName(strings.TrimSpace(name))
			if an == nil {
				return nil, fmt.Errorf("unknown analyzer %q (try -list)", name)
			}
			picked = append(picked, an)
		}
		analyzers = picked
	}
	if skip != "" {
		skipped := map[string]bool{}
		for _, name := range strings.Split(skip, ",") {
			name = strings.TrimSpace(name)
			if registry.ByName(name) == nil {
				return nil, fmt.Errorf("unknown analyzer %q (try -list)", name)
			}
			skipped[name] = true
		}
		var kept []*analysis.Analyzer
		for _, an := range analyzers {
			if !skipped[an.Name] {
				kept = append(kept, an)
			}
		}
		analyzers = kept
	}
	return analyzers, nil
}
