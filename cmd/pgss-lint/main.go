// Command pgss-lint runs the repository's custom static-analysis suite:
// determinism, error-taxonomy and concurrency invariants the generic
// toolchain cannot know about (see internal/analysis).
//
// Usage:
//
//	pgss-lint [flags] [packages]
//
// With no package arguments it analyzes ./.... Exit status is 1 when any
// diagnostic survives suppression filtering, 2 on operational failure.
// Findings are suppressed in source with
//
//	//pgss:allow <analyzer> <reason>
//
// on (or directly above) the offending line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"pgss/internal/analysis"
	"pgss/internal/analysis/registry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("pgss-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list    = fs.Bool("list", false, "list analyzers and exit")
		only    = fs.String("only", "", "comma-separated analyzers to run (default: all)")
		skip    = fs.String("skip", "", "comma-separated analyzers to skip")
		jsonOut = fs.Bool("json", false, "emit diagnostics as JSON")
		dir     = fs.String("C", ".", "change to `dir` before resolving patterns")
		fixStub = fs.Bool("fix", false, "apply suggested fixes (not yet implemented)")
		verbose = fs.Bool("v", false, "log per-package progress")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, an := range registry.All() {
			fmt.Fprintf(stdout, "%-15s %s\n", an.Name, an.Doc)
		}
		fmt.Fprintf(stdout, "\nengine scope: %s\n", strings.Join(analysis.EnginePaths(), " "))
		return 0
	}
	if *fixStub {
		fmt.Fprintln(stderr, "pgss-lint: -fix is a stub; no analyzer ships fixes yet")
		return 2
	}

	analyzers, err := selectAnalyzers(*only, *skip)
	if err != nil {
		fmt.Fprintf(stderr, "pgss-lint: %v\n", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.NewLoader().Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "pgss-lint: %v\n", err)
		return 2
	}

	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		if *verbose {
			fmt.Fprintf(stderr, "pgss-lint: %s\n", pkg.Path)
		}
		for _, an := range analyzers {
			ds, err := analysis.RunAnalyzer(an, pkg)
			if err != nil {
				fmt.Fprintf(stderr, "pgss-lint: %v\n", err)
				return 2
			}
			diags = append(diags, ds...)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "pgss-lint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "pgss-lint: %d finding(s) across %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

func selectAnalyzers(only, skip string) ([]*analysis.Analyzer, error) {
	analyzers := registry.All()
	if only != "" {
		var picked []*analysis.Analyzer
		for _, name := range strings.Split(only, ",") {
			an := registry.ByName(strings.TrimSpace(name))
			if an == nil {
				return nil, fmt.Errorf("unknown analyzer %q (try -list)", name)
			}
			picked = append(picked, an)
		}
		analyzers = picked
	}
	if skip != "" {
		skipped := map[string]bool{}
		for _, name := range strings.Split(skip, ",") {
			name = strings.TrimSpace(name)
			if registry.ByName(name) == nil {
				return nil, fmt.Errorf("unknown analyzer %q (try -list)", name)
			}
			skipped[name] = true
		}
		var kept []*analysis.Analyzer
		for _, an := range analyzers {
			if !skipped[an.Name] {
				kept = append(kept, an)
			}
		}
		analyzers = kept
	}
	return analyzers, nil
}
