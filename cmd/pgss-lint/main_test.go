package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// repoRoot walks up from the working directory to the directory holding
// go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above the test working directory")
		}
		dir = parent
	}
}

func capture(t *testing.T, name string) (*os.File, func() string) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), name)
	if err != nil {
		t.Fatal(err)
	}
	return f, func() string {
		b, err := os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
		f.Close()
		return string(b)
	}
}

// TestRepoIsClean is the dogfooding gate: the full analyzer suite over the
// whole module must report nothing. Since the dataflow tier this covers
// more than the nine engine packages — lockorder and leaktrack also run
// over internal/artifact, internal/chaos and every cmd/ package (the
// flow scope), and exhaustive checks every registered enum switch
// module-wide. If this fails, either new code broke an invariant (fix it
// or add a justified //pgss:allow) or an analyzer grew a false positive
// (fix the analyzer).
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped with -short")
	}
	stdout, readOut := capture(t, "stdout")
	stderr, readErr := capture(t, "stderr")
	code := run([]string{"-C", repoRoot(t), "./..."}, stdout, stderr)
	if code != 0 {
		t.Errorf("pgss-lint ./... exited %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, readOut(), readErr())
	}
}

// TestListAnalyzers checks -list names every analyzer and the engine
// scope.
func TestListAnalyzers(t *testing.T) {
	stdout, readOut := capture(t, "stdout")
	stderr, _ := capture(t, "stderr")
	if code := run([]string{"-list"}, stdout, stderr); code != 0 {
		t.Fatalf("-list exited %d, want 0", code)
	}
	out := readOut()
	all := []string{
		"nodeterminism", "maporder", "errwrap", "ctxflow", "mutexcopy",
		"goroutines", "ioatomic", "lockorder", "leaktrack", "fpdeterminism",
		"exhaustive",
	}
	if len(all) != 11 {
		t.Fatalf("suite should list 11 analyzers, test names %d", len(all))
	}
	for _, name := range all {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "pgss/internal/core") {
		t.Errorf("-list output missing engine scope:\n%s", out)
	}
	if !strings.Contains(out, "flow scope") || !strings.Contains(out, "pgss/internal/artifact") {
		t.Errorf("-list output missing flow scope:\n%s", out)
	}
}

// TestUnknownAnalyzerIsOperationalError pins the exit-code contract:
// misuse is 2, not 1 (findings) or 0.
func TestUnknownAnalyzerIsOperationalError(t *testing.T) {
	stdout, _ := capture(t, "stdout")
	stderr, readErr := capture(t, "stderr")
	if code := run([]string{"-only", "nosuch"}, stdout, stderr); code != 2 {
		t.Errorf("-only nosuch exited %d, want 2\nstderr:\n%s", code, readErr())
	}
}
