// Command pgss-trace generates and replays cycle-close phase traces —
// trace-driven simulation in the style of Pereira et al. (the paper's
// closest related work).
//
// Usage:
//
//	pgss-trace -bench 188.ammp -ops 20000000             # capture + replay
//	pgss-trace -bench 188.ammp -policy first              # Pereira-faithful
//	pgss-trace -bench 188.ammp -model ooo                 # replay over the OoO core
//
// The tool captures one representative trace per detected phase (with its
// cache/predictor state), replays the bundle through a fresh pipeline, and
// compares the trace-driven IPC estimate against full-simulation truth.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pgss"
	"pgss/internal/trace"
)

func main() {
	bench := flag.String("bench", "188.ammp", "benchmark name")
	ops := flag.Uint64("ops", 20_000_000, "program length in ops")
	interval := flag.Uint64("interval", 100_000, "phase interval in ops")
	threshold := flag.Float64("threshold", 0.05, "BBV angle threshold (fraction of π)")
	policy := flag.String("policy", "median", "representative policy: first|median")
	model := flag.String("model", "inorder", "replay timing model: inorder|ooo")
	flag.Parse()

	spec, err := pgss.Benchmark(*bench)
	check(err)
	prog, err := spec.Build(*ops)
	check(err)

	var pol trace.RepPolicy
	switch *policy {
	case "first":
		pol = pgss.RepFirst
	case "median":
		pol = pgss.RepMedian
	default:
		check(fmt.Errorf("unknown policy %q", *policy))
	}

	t0 := time.Now()
	traces, err := pgss.CapturePhaseTraces(prog, pgss.DefaultCoreConfig(), *interval, *threshold, pol)
	check(err)
	var bytesTotal int
	for _, pt := range traces {
		bytesTotal += len(pt.Data)
	}
	fmt.Printf("%s: captured %d phase traces (%.1f MB, %s policy) in %v\n",
		prog.Name, len(traces), float64(bytesTotal)/1e6, *policy,
		time.Since(t0).Round(time.Millisecond))
	fmt.Printf("%6s %10s %12s %12s\n", "phase", "weight", "start_op", "trace_ops")
	for _, pt := range traces {
		fmt.Printf("%6d %9.2f%% %12d %12d\n", pt.PhaseID, pt.Weight*100, pt.StartOp, pt.Ops)
	}

	cc := pgss.DefaultCoreConfig()
	cc.Timing.Model = *model
	t0 = time.Now()
	est, err := pgss.EstimateIPCFromTraces(traces, cc)
	check(err)
	replayDur := time.Since(t0)

	// Truth on the same core model.
	truth, err := pgss.RecordWithCore(spec, *ops, cc)
	check(err)
	errPct := abs(est-truth.TrueIPC()) / truth.TrueIPC() * 100
	fmt.Printf("\ntrace-driven estimate (%s core): %.4f in %v\n", *model, est, replayDur.Round(time.Millisecond))
	fmt.Printf("full-simulation truth:           %.4f\n", truth.TrueIPC())
	fmt.Printf("error: %.2f%%\n", errPct)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pgss-trace:", err)
		os.Exit(1)
	}
}
