// Command pgss-chaos runs the chaos harness: seeded campaigns executed
// under deterministic fault schedules — torn journal writes, ENOSPC,
// dropped fsyncs, worker panics and stalls, cancellation, power loss —
// asserting that every scenario degrades gracefully and resumes to results
// bit-identical to an uninterrupted run.
//
// Usage:
//
//	pgss-chaos                      # the standard smoke set
//	pgss-chaos -seeds 50 -seed 1000 # a wider seeded sweep
//	pgss-chaos -replay 1007         # re-run one failing scenario verbosely
//
// The exit code is 0 only if every scenario converged to baseline-identical
// results. A failure prints the scenario's seed and fired-fault log;
// `pgss-chaos -replay <seed>` reproduces that schedule.
package main

import (
	"flag"
	"fmt"
	"os"

	"pgss/internal/chaos"
)

func main() {
	seeds := flag.Int("seeds", 10, "number of generated scenarios")
	base := flag.Int64("seed", 100, "base seed; scenario i uses seed+i")
	replay := flag.Int64("replay", 0, "re-run the single scenario with this seed (verbose) and exit")
	verbose := flag.Bool("v", false, "print per-life progress")
	flag.Parse()

	logf := func(string, ...any) {}
	if *verbose || *replay != 0 {
		logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format, args...) }
	}

	h, err := chaos.NewHarness(logf)
	if err != nil {
		fatal(err)
	}
	baseline, err := h.Baseline()
	if err != nil {
		fatal(err)
	}

	var scenarios []chaos.Scenario
	if *replay != 0 {
		scenarios = []chaos.Scenario{chaos.GenScenario(*replay)}
	} else {
		for i := 0; i < *seeds; i++ {
			scenarios = append(scenarios, chaos.GenScenario(*base+int64(i)))
		}
	}

	failed := 0
	for _, sc := range scenarios {
		out, err := h.Run(sc, baseline)
		if err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "FAIL %s (seed %d): %v\n", sc.Name, sc.Seed, err)
			continue
		}
		fmt.Printf("ok   %s\n", out)
	}

	// Artifact-store scenarios: mid-publish power loss against the
	// content-addressed store, same seeds as the campaign sweep.
	storeRef, err := chaos.ReferenceStoreSHAs()
	if err != nil {
		fatal(err)
	}
	for _, sc := range scenarios {
		out, err := chaos.RunStore(sc.Seed, storeRef, logf)
		if err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "FAIL store-%d: %v\n", sc.Seed, err)
			continue
		}
		fmt.Printf("ok   %s\n", out)
	}

	total := 2 * len(scenarios)
	if failed > 0 {
		fatal(fmt.Errorf("chaos: %d/%d scenarios failed", failed, total))
	}
	fmt.Printf("chaos: %d scenarios converged to baseline-identical results\n", total)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pgss-chaos:", err)
	os.Exit(1)
}
