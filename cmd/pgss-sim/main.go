// Command pgss-sim runs one sampling technique on one benchmark and
// reports the estimate, error and cost ledger.
//
// Usage:
//
//	pgss-sim -bench 164.gzip -technique pgss [-ops N] [-threshold 0.05] [-period 100000] [-diag]
//	pgss-sim -bench 181.mcf -technique smarts
//	pgss-sim -bench 179.art -technique 2pss -channel mav
//
// Techniques: full, smarts, turbosmarts, simpoint, onlinesimpoint,
// stratified, pgss, adaptive, 2pss, rss. The -channel flag selects the
// signature channel (bbv, mav, both) for pgss, 2pss and rss.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"pgss"
)

func main() {
	bench := flag.String("bench", "164.gzip", "benchmark name")
	ops := flag.Uint64("ops", 0, "program length in ops (0 = benchmark default)")
	technique := flag.String("technique", "pgss", "full|smarts|turbosmarts|simpoint|onlinesimpoint|stratified|pgss|adaptive|2pss|rss")
	channel := flag.String("channel", "bbv", "signature channel: bbv|mav|both (pgss, 2pss, rss)")
	scale := flag.Uint64("scale", 10, "parameter scale divisor")
	threshold := flag.Float64("threshold", 0.05, "BBV threshold (fraction of π; pgss/onlinesimpoint)")
	period := flag.Uint64("period", 0, "PGSS FF period in ops (0 = 1M/scale)")
	interval := flag.Uint64("interval", 0, "SimPoint interval in ops (0 = 10M/scale)")
	k := flag.Int("k", 10, "SimPoint cluster count")
	diag := flag.Bool("diag", false, "print per-phase diagnostics (pgss)")
	guard := flag.Bool("guard", false, "enable the transition guard (pgss)")
	trace := flag.Int("trace", 0, "print first N sample events (pgss)")
	flag.Parse()

	ch, err := pgss.ParseChannel(*channel)
	check(err)

	spec, err := pgss.Benchmark(*bench)
	check(err)
	prof, err := pgss.Record(spec, *ops)
	check(err)
	fmt.Printf("%s: %d ops, true IPC %.4f\n", prof.Benchmark, prof.TotalOps, prof.TrueIPC())

	switch *technique {
	case "full":
		res, err := pgss.RunFull(prof)
		check(err)
		show(res)
	case "smarts":
		res, err := pgss.RunSMARTS(prof, pgss.DefaultSMARTSConfig(*scale))
		check(err)
		show(res)
	case "turbosmarts":
		res, err := pgss.RunTurboSMARTS(prof, pgss.DefaultTurboSMARTSConfig(*scale))
		check(err)
		show(res)
	case "simpoint":
		cfg := pgss.SimPointConfig{IntervalOps: *interval, K: *k, Seed: 1, Restarts: 3}
		if cfg.IntervalOps == 0 {
			cfg.IntervalOps = 10_000_000 / *scale
		}
		res, err := pgss.RunSimPoint(prof, cfg)
		check(err)
		show(res)
	case "onlinesimpoint":
		cfg := pgss.OnlineSimPointConfig{IntervalOps: *interval, ThresholdPi: *threshold}
		if cfg.IntervalOps == 0 {
			cfg.IntervalOps = 10_000_000 / *scale
		}
		res, err := pgss.RunOnlineSimPoint(prof, cfg)
		check(err)
		show(res)
	case "pgss":
		cfg := pgss.DefaultPGSSConfig(*scale)
		cfg.Channel = ch
		cfg.ThresholdPi = *threshold
		if *period != 0 {
			cfg.FFOps = *period
		}
		cfg.Trace = *trace > 0
		cfg.GuardTransitions = *guard
		res, st, err := pgss.RunPGSS(prof, cfg)
		check(err)
		show(res)
		fmt.Printf("phases=%d transitions=%d taken=%d skipped=%d deferred=%d unsampled_ops=%d\n",
			st.Phases, st.Transitions, st.SamplesTaken, st.SamplesSkipped,
			st.SpreadDeferrals, st.UnsampledOps)
		if *diag {
			diagnose(st)
		}
		for i, ev := range st.SampleTrace {
			if i >= *trace {
				break
			}
			fmt.Printf("sample %4d: pos=%-12d phase=%-3d cpi=%.3f\n", i, ev.Pos, ev.PhaseID, ev.CPI)
		}
	case "stratified":
		cfg := pgss.DefaultStratifiedConfig(*scale)
		if *interval != 0 {
			cfg.IntervalOps = *interval
		}
		cfg.ThresholdPi = *threshold
		res, err := pgss.RunStratified(prof, cfg)
		check(err)
		show(res)
	case "2pss":
		cfg := pgss.DefaultTwoPhaseConfig(*scale)
		cfg.Channel = ch
		cfg.ThresholdPi = *threshold
		if *interval != 0 {
			cfg.IntervalOps = *interval
		}
		res, err := pgss.RunTwoPhase(prof, cfg)
		check(err)
		show(res)
	case "rss":
		cfg := pgss.DefaultRankedSetConfig(*scale)
		cfg.Channel = ch
		if *interval != 0 {
			cfg.IntervalOps = *interval
		}
		res, err := pgss.RunRankedSet(prof, cfg)
		check(err)
		show(res)
	case "adaptive":
		cfg := pgss.DefaultAdaptiveConfig(*scale)
		res, ast, err := pgss.RunAdaptivePGSS(prof, cfg)
		check(err)
		show(res)
		fmt.Printf("final parameters: FF=%d ops, threshold .%03dπ (%d restarts)\n",
			ast.FinalFFOps, int(ast.FinalThresholdPi*1000+0.5), ast.Restarts)
		for _, a := range ast.Adjustments {
			fmt.Println("  " + a)
		}
	default:
		check(fmt.Errorf("unknown technique %q", *technique))
	}
}

func show(res pgss.Result) {
	fmt.Printf("%s[%s]: est=%.4f err=%.3f%% samples=%d\n",
		res.Technique, res.Config, res.EstimatedIPC, res.ErrorPct(), res.Samples)
	fmt.Printf("costs: detailed=%d warm=%d functional=%d plainFF=%d (detailed total %.3f%% of program)\n",
		res.Costs.Detailed, res.Costs.DetailedWarm, res.Costs.FunctionalWarm, res.Costs.PlainFF,
		float64(res.Costs.DetailedTotal())/float64(res.Costs.Total()+1)*100)
}

// diagnose prints the per-phase ledger of a PGSS run.
func diagnose(st pgss.PGSSStats) {
	fmt.Println("\nper-phase diagnostics:")
	fmt.Printf("%6s %10s %8s %10s %10s %8s\n", "phase", "windows", "samples", "meanCPI", "cvCPI", "ops%")
	phases := st.PhaseDiags
	sort.Slice(phases, func(i, j int) bool { return phases[i].Ops > phases[j].Ops })
	var total uint64
	for _, p := range phases {
		total += p.Ops
	}
	for i, p := range phases {
		if i >= 20 {
			fmt.Printf("   ... %d more phases\n", len(phases)-i)
			break
		}
		fmt.Printf("%6d %10d %8d %10.3f %10.3f %7.2f%%\n",
			p.ID, p.Intervals, p.Samples, p.MeanCPI, p.CVCPI,
			float64(p.Ops)/float64(total)*100)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pgss-sim:", err)
		os.Exit(1)
	}
}
