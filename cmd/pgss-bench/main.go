// Command pgss-bench regenerates the paper's evaluation figures and runs
// large fault-tolerant campaigns of benchmark × technique × seed runs.
//
// Usage:
//
//	pgss-bench -fig all                    # every figure, default size
//	pgss-bench -fig 12 -size 1.0           # Fig 12 at full benchmark size
//	pgss-bench -fig 2,3 -cache /tmp/pgss    # cache profiles between runs
//
//	pgss-bench -campaign all -seeds 3 -jobs 8      # full campaign grid
//	pgss-bench -campaign PGSS,SMARTS -timeout 10m  # per-run time budget
//	pgss-bench -campaign all -resume               # continue a killed run
//
// Figure IDs follow the paper: 2, 3, 7, 8, 9, 10, 11, 12, 13; the named
// experiments ablation, coverage and extensions go beyond it.
//
// A campaign journals every finished run to a JSONL file (-journal, by
// default campaign.jsonl under the cache directory), so a killed or
// interrupted campaign re-invoked with -resume skips completed runs.
// SIGINT drains in-flight runs, journals them and exits with the partial
// results and an error summary.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pgss/internal/campaign"
	"pgss/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "comma-separated figure numbers (e.g. 2,12), named experiments (ablation, coverage, extensions), or 'all'")
	size := flag.Float64("size", 1.0, "benchmark length factor relative to defaults")
	ops := flag.Uint64("ops", 0, "override per-benchmark op count (0 = defaults × size)")
	scale := flag.Uint64("scale", 10, "parameter scale divisor vs the paper's SPEC-scale values")
	cache := flag.String("cache", defaultCacheDir(), "profile cache directory ('' disables)")
	artifacts := flag.String("artifacts", "", "content-addressed artifact store root shared across runs and processes ('' disables; supersedes -cache)")
	quiet := flag.Bool("q", false, "suppress progress output")
	csvDir := flag.String("csv", "", "also write every table as CSV into this directory")
	camp := flag.String("campaign", "", "run a campaign of the given techniques ('all' or comma-separated) instead of figures")
	seeds := flag.Int("seeds", 1, "campaign: seeds per benchmark × technique pair")
	jobs := flag.Int("jobs", 0, "parallel workers for recording and campaigns (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 0, "PGSS runs: concurrent fast-forward shards per run (0/1 = serial engine)")
	sampleWorkers := flag.Int("sample-workers", 0, "PGSS runs: concurrent detailed-sample workers per run (0/1 = serial engine)")
	timeout := flag.Duration("timeout", 0, "campaign: per-run time budget (0 = unbounded)")
	retries := flag.Int("retries", 2, "campaign: max attempts per run for retryable failures")
	journal := flag.String("journal", "", "campaign: journal path (default campaign.jsonl under the cache dir)")
	resume := flag.Bool("resume", false, "campaign: skip runs already journaled as done")
	flag.Parse()

	// SIGINT/SIGTERM cancel the context; figure generation stops between
	// windows, campaigns drain in-flight runs and journal them.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := experiments.DefaultOptions()
	opts.Scale = *scale
	opts.SizeFactor = *size
	opts.TotalOps = *ops
	opts.CacheDir = *cache
	opts.ArtifactDir = *artifacts
	opts.Quiet = *quiet
	opts.Jobs = *jobs
	opts.Shards = *shards
	opts.SampleWorkers = *sampleWorkers
	opts.Context = ctx
	suite, err := experiments.NewSuite(opts)
	if err != nil {
		fatal(err)
	}

	if *camp != "" {
		inner := *shards
		if *sampleWorkers > inner {
			inner = *sampleWorkers
		}
		runCampaign(ctx, suite, campaignConfig{
			techniques:  strings.Split(*camp, ","),
			seeds:       *seeds,
			jobs:        *jobs,
			innerShards: inner,
			timeout:     *timeout,
			retries:     *retries,
			journal:     *journal,
			cacheDir:    *cache,
			resume:      *resume,
			quiet:       *quiet,
		})
		return
	}

	var ids []string
	if *fig == "all" {
		ids = experiments.FigureIDs()
	} else {
		for _, f := range strings.Split(*fig, ",") {
			f = strings.TrimSpace(f)
			// Bare figure numbers get the "fig" prefix; named experiments
			// (ablation, extensions) pass through.
			if _, err := strconv.Atoi(f); err == nil {
				f = "fig" + f
			}
			ids = append(ids, f)
		}
	}

	for _, id := range ids {
		start := time.Now()
		rep, err := experiments.Run(suite, id)
		if err != nil {
			if ctx.Err() != nil {
				fmt.Fprintf(os.Stderr, "pgss-bench: %s interrupted: %v\n", id, err)
				os.Exit(130)
			}
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		rep.Fprint(os.Stdout)
		if *csvDir != "" {
			if err := rep.WriteCSV(*csvDir); err != nil {
				fatal(fmt.Errorf("%s: csv: %w", id, err))
			}
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "%s regenerated in %v\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
}

type campaignConfig struct {
	techniques  []string
	seeds       int
	jobs        int
	innerShards int
	timeout     time.Duration
	retries     int
	journal     string
	cacheDir    string
	resume      bool
	quiet       bool
}

func runCampaign(ctx context.Context, suite *experiments.Suite, cfg campaignConfig) {
	techniques, err := experiments.ResolveTechniques(trimAll(cfg.techniques))
	if err != nil {
		fatal(err)
	}
	journal := cfg.journal
	if journal == "" {
		if cfg.cacheDir != "" {
			journal = filepath.Join(cfg.cacheDir, "campaign.jsonl")
		} else {
			journal = "campaign.jsonl"
		}
	}
	specs := experiments.CampaignSpecs(experiments.PaperTenNames(), techniques, cfg.seeds)
	logf := func(format string, args ...any) {
		if !cfg.quiet {
			fmt.Fprintf(os.Stderr, format, args...)
		}
	}
	logf("campaign: %d runs (%d benchmarks × %d techniques × %d seeds), journal %s\n",
		len(specs), len(experiments.PaperTenNames()), len(techniques), cfg.seeds, journal)

	rep, err := campaign.Run(ctx, specs, suite.CampaignRun, campaign.Options{
		Jobs:        cfg.jobs,
		InnerShards: cfg.innerShards,
		Timeout:     cfg.timeout,
		MaxAttempts: cfg.retries,
		JournalPath: journal,
		Resume:      cfg.resume,
		Logf:        logf,
	})
	if err != nil {
		fatal(err)
	}
	printCampaign(rep)
	switch {
	case rep.Interrupted > 0:
		fmt.Fprintf(os.Stderr, "pgss-bench: interrupted; re-run with -resume to continue\n")
		os.Exit(130)
	case rep.Failed > 0:
		os.Exit(1)
	}
}

func printCampaign(rep *campaign.Report) {
	fmt.Printf("%-14s %-14s %5s %9s %9s %8s %9s  %s\n",
		"benchmark", "technique", "seed", "est_ipc", "err%", "attempts", "elapsed", "status")
	for _, o := range rep.Outcomes {
		status := "ok"
		switch {
		case o.Resumed:
			status = "resumed"
		case errors.Is(o.Err, context.Canceled), o.ErrKind == "interrupted":
			status = "interrupted"
		case o.Err != nil:
			status = o.ErrKind
		}
		est, errPct := "-", "-"
		if o.Err == nil {
			est = fmt.Sprintf("%.4f", o.Result.EstimatedIPC)
			errPct = fmt.Sprintf("%.2f", o.Result.ErrorPct())
		}
		fmt.Printf("%-14s %-14s %5d %9s %9s %8d %9s  %s\n",
			o.Spec.Benchmark, o.Spec.Technique, o.Spec.Seed, est, errPct,
			o.Attempts, o.Elapsed.Round(time.Millisecond), status)
	}
	fmt.Println()
	fmt.Println(rep.Summary())
	// Error detail, one line per failed run.
	for _, o := range rep.Outcomes {
		if o.Err != nil && o.ErrKind != "interrupted" {
			line := o.Err.Error()
			if i := strings.IndexByte(line, '\n'); i >= 0 {
				line = line[:i] // stack traces stay out of the summary
			}
			fmt.Printf("  %s: %s\n", o.Spec, line)
		}
	}
}

func trimAll(in []string) []string {
	out := in[:0]
	for _, s := range in {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

func defaultCacheDir() string {
	if dir, err := os.UserCacheDir(); err == nil {
		return dir + "/pgss-profiles"
	}
	return ""
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pgss-bench:", err)
	os.Exit(1)
}
