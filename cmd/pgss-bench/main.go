// Command pgss-bench regenerates the paper's evaluation figures.
//
// Usage:
//
//	pgss-bench -fig all                    # every figure, default size
//	pgss-bench -fig 12 -size 1.0           # Fig 12 at full benchmark size
//	pgss-bench -fig 2,3 -cache /tmp/pgss    # cache profiles between runs
//
// Figure IDs follow the paper: 2, 3, 7, 8, 9, 10, 11, 12, 13; the named
// experiments ablation, coverage and extensions go beyond it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"pgss/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "comma-separated figure numbers (e.g. 2,12), named experiments (ablation, coverage, extensions), or 'all'")
	size := flag.Float64("size", 1.0, "benchmark length factor relative to defaults")
	ops := flag.Uint64("ops", 0, "override per-benchmark op count (0 = defaults × size)")
	scale := flag.Uint64("scale", 10, "parameter scale divisor vs the paper's SPEC-scale values")
	cache := flag.String("cache", defaultCacheDir(), "profile cache directory ('' disables)")
	quiet := flag.Bool("q", false, "suppress progress output")
	csvDir := flag.String("csv", "", "also write every table as CSV into this directory")
	flag.Parse()

	opts := experiments.DefaultOptions()
	opts.Scale = *scale
	opts.SizeFactor = *size
	opts.TotalOps = *ops
	opts.CacheDir = *cache
	opts.Quiet = *quiet
	suite, err := experiments.NewSuite(opts)
	if err != nil {
		fatal(err)
	}

	var ids []string
	if *fig == "all" {
		ids = experiments.FigureIDs()
	} else {
		for _, f := range strings.Split(*fig, ",") {
			f = strings.TrimSpace(f)
			// Bare figure numbers get the "fig" prefix; named experiments
			// (ablation, extensions) pass through.
			if _, err := strconv.Atoi(f); err == nil {
				f = "fig" + f
			}
			ids = append(ids, f)
		}
	}

	for _, id := range ids {
		start := time.Now()
		rep, err := experiments.Run(suite, id)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		rep.Fprint(os.Stdout)
		if *csvDir != "" {
			if err := rep.WriteCSV(*csvDir); err != nil {
				fatal(fmt.Errorf("%s: csv: %w", id, err))
			}
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "%s regenerated in %v\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
}

func defaultCacheDir() string {
	if dir, err := os.UserCacheDir(); err == nil {
		return dir + "/pgss-profiles"
	}
	return ""
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pgss-bench:", err)
	os.Exit(1)
}
