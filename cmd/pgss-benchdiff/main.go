// Command pgss-benchdiff converts `go test -bench` output into a
// machine-readable JSON snapshot and gates benchmark regressions.
//
// Parse mode reads bench output from stdin and writes a snapshot:
//
//	go test -bench . -run '^$' ./... | pgss-benchdiff -parse -o BENCH_pr2.json
//
// Compare mode diffs two snapshots and exits non-zero when any benchmark
// present in both regressed by more than -max-regress percent in ns/op:
//
//	pgss-benchdiff -baseline BENCH_pr2.json -current head.json -max-regress 15
//
// -only restricts the comparison to benchmarks matching a regexp (both the
// gate and the missing-benchmark check), and the summary line reports the
// geometric-mean head/base ns/op ratio across all compared benchmarks —
// the number speed-up claims quote:
//
//	pgss-benchdiff -baseline base.json -current head.json -only 'BenchmarkAblation'
//
// ns/op comparisons are only meaningful between snapshots taken on the
// same hardware; the CI gate therefore benches the PR's base and head on
// the same runner rather than trusting a committed baseline's absolute
// numbers. The committed snapshot records the perf trajectory (and the
// recording machine's CPU count) for human inspection.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
)

// Snapshot is the benchmark record written by -parse.
type Snapshot struct {
	Schema     int                  `json:"schema"`
	GoVersion  string               `json:"go"`
	CPUs       int                  `json:"cpus"`
	Benchmarks map[string]BenchStat `json:"benchmarks"`
}

// BenchStat is one benchmark's result.
type BenchStat struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	Iterations  int64   `json:"iterations"`
}

// benchLine matches `BenchmarkName-8  1000  123.4 ns/op  0 B/op  0 allocs/op`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)
var metricRe = regexp.MustCompile(`\s+([0-9.]+) (B/op|allocs/op)`)

func main() {
	parse := flag.Bool("parse", false, "read `go test -bench` output from stdin and write a JSON snapshot")
	out := flag.String("o", "", "parse: output path (default stdout)")
	baseline := flag.String("baseline", "", "compare: baseline snapshot path")
	current := flag.String("current", "", "compare: current snapshot path")
	maxRegress := flag.Float64("max-regress", 15, "compare: max allowed ns/op regression in percent")
	only := flag.String("only", "", "compare: restrict to benchmarks matching this regexp")
	flag.Parse()

	switch {
	case *parse:
		if err := runParse(*out); err != nil {
			fatal(err)
		}
	case *baseline != "" && *current != "":
		regressed, err := runCompare(*baseline, *current, *maxRegress, *only)
		if err != nil {
			fatal(err)
		}
		if regressed {
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "pgss-benchdiff: need -parse or both -baseline and -current")
		flag.Usage()
		os.Exit(2)
	}
}

func runParse(out string) error {
	snap := Snapshot{
		Schema:     1,
		GoVersion:  runtime.Version(),
		CPUs:       runtime.NumCPU(),
		Benchmarks: map[string]BenchStat{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		stat := BenchStat{NsPerOp: ns, Iterations: iters}
		for _, mm := range metricRe.FindAllStringSubmatch(m[4], -1) {
			v, _ := strconv.ParseFloat(mm[1], 64)
			switch mm[2] {
			case "B/op":
				stat.BytesPerOp = v
			case "allocs/op":
				stat.AllocsPerOp = v
			}
		}
		// Duplicate names (same benchmark in several packages would be a
		// bug; repeated -count runs are not) keep the fastest run, the
		// usual noise-robust choice.
		if prev, ok := snap.Benchmarks[m[1]]; !ok || stat.NsPerOp < prev.NsPerOp {
			snap.Benchmarks[m[1]] = stat
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("reading stdin: %w", err)
	}
	if len(snap.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(out, enc, 0o644)
}

func load(path string) (Snapshot, error) {
	var s Snapshot
	raw, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(raw, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

func runCompare(basePath, curPath string, maxRegress float64, only string) (regressed bool, err error) {
	base, err := load(basePath)
	if err != nil {
		return false, err
	}
	cur, err := load(curPath)
	if err != nil {
		return false, err
	}
	var filter *regexp.Regexp
	if only != "" {
		if filter, err = regexp.Compile(only); err != nil {
			return false, fmt.Errorf("-only: %w", err)
		}
	}
	return compare(base, cur, maxRegress, filter, os.Stdout), nil
}

// compare diffs two snapshots and reports whether the gate should fail: a
// ns/op regression beyond maxRegress percent, or a benchmark that exists in
// the baseline but vanished from the head (a silently deleted or renamed
// benchmark would otherwise un-gate itself). New head-only benchmarks are
// fine — they simply have no baseline yet. A non-nil only regexp restricts
// both checks to matching benchmark names. The summary reports the
// geometric-mean head/base ratio over the compared set.
func compare(base, cur Snapshot, maxRegress float64, only *regexp.Regexp, w io.Writer) (failed bool) {
	match := func(name string) bool { return only == nil || only.MatchString(name) }
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; ok && match(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var missing []string
	for name := range base.Benchmarks {
		if _, ok := cur.Benchmarks[name]; !ok && match(name) {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	if len(names) == 0 && len(missing) == 0 {
		fmt.Fprintln(w, "pgss-benchdiff: no common benchmarks to compare")
		return false
	}
	if len(names) > 0 {
		fmt.Fprintf(w, "%-44s %12s %12s %8s\n", "benchmark", "base ns/op", "head ns/op", "delta")
	}
	regressed := false
	var logSum float64
	var compared int
	for _, name := range names {
		b, c := base.Benchmarks[name], cur.Benchmarks[name]
		if b.NsPerOp <= 0 || c.NsPerOp <= 0 {
			continue
		}
		delta := (c.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		mark := ""
		if delta > maxRegress {
			mark = "  << REGRESSION"
			regressed = true
		}
		fmt.Fprintf(w, "%-44s %12.1f %12.1f %+7.1f%%%s\n", name, b.NsPerOp, c.NsPerOp, delta, mark)
		if d, ok := allocRegression(b, c, maxRegress); ok {
			fmt.Fprintf(w, "%-44s %12.0f %12.0f %+7.1f%%  << ALLOCS/OP REGRESSION\n",
				name, b.AllocsPerOp, c.AllocsPerOp, d)
			regressed = true
		}
		if d, ok := bytesRegression(b, c, maxRegress); ok {
			fmt.Fprintf(w, "%-44s %12.0f %12.0f %+7.1f%%  << B/OP REGRESSION\n",
				name, b.BytesPerOp, c.BytesPerOp, d)
			regressed = true
		}
		logSum += math.Log(c.NsPerOp / b.NsPerOp)
		compared++
	}
	if compared > 0 {
		ratio := math.Exp(logSum / float64(compared))
		fmt.Fprintf(w, "geomean head/base ns/op ratio over %d benchmark(s): %.3fx", compared, ratio)
		if ratio < 1 {
			fmt.Fprintf(w, " (%.1fx speed-up)", 1/ratio)
		}
		fmt.Fprintln(w)
	}
	for _, name := range missing {
		fmt.Fprintf(w, "%-44s %12.1f %12s  << MISSING from head snapshot\n",
			name, base.Benchmarks[name].NsPerOp, "-")
	}
	if regressed {
		fmt.Fprintf(w, "pgss-benchdiff: regression beyond %.0f%% detected\n", maxRegress)
	}
	if len(missing) > 0 {
		fmt.Fprintf(w, "pgss-benchdiff: %d benchmark(s) present in the baseline are missing from the head snapshot: %v\n",
			len(missing), missing)
		fmt.Fprintf(w, "pgss-benchdiff: a deleted or renamed benchmark must update the baseline snapshot, not skip the gate\n")
	}
	return regressed || len(missing) > 0
}

// allocRegression gates allocs/op. Benchmarks without b.ReportAllocs()
// record zero for both sides and never fire; a noise floor of 2 allocs/op
// absolute keeps 1→2-style jitter on nearly-alloc-free benchmarks from
// tripping the percentage gate.
func allocRegression(b, c BenchStat, maxRegress float64) (delta float64, regressed bool) {
	if b.AllocsPerOp < 1 {
		return 0, false
	}
	delta = (c.AllocsPerOp - b.AllocsPerOp) / b.AllocsPerOp * 100
	return delta, delta > maxRegress && c.AllocsPerOp-b.AllocsPerOp >= 2
}

// bytesRegression gates B/op with a 64-byte absolute noise floor (one
// cache line), for the same reason as the allocs floor.
func bytesRegression(b, c BenchStat, maxRegress float64) (delta float64, regressed bool) {
	if b.BytesPerOp <= 0 {
		return 0, false
	}
	delta = (c.BytesPerOp - b.BytesPerOp) / b.BytesPerOp * 100
	return delta, delta > maxRegress && c.BytesPerOp-b.BytesPerOp >= 64
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pgss-benchdiff:", err)
	os.Exit(1)
}
