package main

import (
	"regexp"
	"strings"
	"testing"
)

func snap(benchmarks map[string]float64) Snapshot {
	s := Snapshot{Schema: 1, Benchmarks: map[string]BenchStat{}}
	for name, ns := range benchmarks {
		s.Benchmarks[name] = BenchStat{NsPerOp: ns, Iterations: 100}
	}
	return s
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	base := snap(map[string]float64{"BenchmarkA": 100, "BenchmarkB": 200})
	cur := snap(map[string]float64{"BenchmarkA": 101})
	var out strings.Builder
	if !compare(base, cur, 15, nil, &out) {
		t.Fatal("benchmark missing from head did not fail the gate")
	}
	got := out.String()
	if !strings.Contains(got, "BenchmarkB") || !strings.Contains(got, "MISSING") {
		t.Fatalf("missing benchmark not reported by name:\n%s", got)
	}
	if !strings.Contains(got, "missing from the head snapshot") {
		t.Fatalf("no clear missing-benchmark message:\n%s", got)
	}
}

func TestCompareDetectsRegression(t *testing.T) {
	base := snap(map[string]float64{"BenchmarkA": 100, "BenchmarkB": 100})
	cur := snap(map[string]float64{"BenchmarkA": 130, "BenchmarkB": 105})
	var out strings.Builder
	if !compare(base, cur, 15, nil, &out) {
		t.Fatal("30% regression under a 15% gate did not fail")
	}
	got := out.String()
	if !strings.Contains(got, "REGRESSION") || !strings.Contains(got, "regression beyond 15%") {
		t.Fatalf("regression not flagged:\n%s", got)
	}
}

func TestCompareCleanRunPasses(t *testing.T) {
	base := snap(map[string]float64{"BenchmarkA": 100, "BenchmarkB": 200})
	cur := snap(map[string]float64{"BenchmarkA": 110, "BenchmarkB": 190})
	var out strings.Builder
	if compare(base, cur, 15, nil, &out) {
		t.Fatalf("within-gate deltas failed the compare:\n%s", out.String())
	}
}

func TestCompareNewBenchmarkIsNotAFailure(t *testing.T) {
	base := snap(map[string]float64{"BenchmarkA": 100})
	cur := snap(map[string]float64{"BenchmarkA": 100, "BenchmarkNew": 50})
	var out strings.Builder
	if compare(base, cur, 15, nil, &out) {
		t.Fatalf("a benchmark new in head must not fail the gate:\n%s", out.String())
	}
}

func TestCompareNoOverlap(t *testing.T) {
	// Nothing in common and nothing missing: an empty baseline matches any
	// head (the first run ever has no baseline to hold the head to).
	var out strings.Builder
	if compare(snap(nil), snap(map[string]float64{"BenchmarkA": 100}), 15, nil, &out) {
		t.Fatal("empty baseline failed the gate")
	}
	// But a baseline whose every benchmark vanished is all-missing: fail.
	out.Reset()
	if !compare(snap(map[string]float64{"BenchmarkA": 100}), snap(nil), 15, nil, &out) {
		t.Fatal("fully vanished benchmark set passed the gate")
	}
}

func TestCompareOnlyFilter(t *testing.T) {
	base := snap(map[string]float64{"BenchmarkAblationA": 100, "BenchmarkOther": 100, "BenchmarkGone": 50})
	cur := snap(map[string]float64{"BenchmarkAblationA": 105, "BenchmarkOther": 500})
	only := regexp.MustCompile(`^BenchmarkAblation`)
	var out strings.Builder
	// BenchmarkOther's 5x regression and BenchmarkGone's disappearance are
	// both outside the filter: the gate must pass.
	if compare(base, cur, 15, only, &out) {
		t.Fatalf("filtered-out regression failed the gate:\n%s", out.String())
	}
	got := out.String()
	if strings.Contains(got, "BenchmarkOther") || strings.Contains(got, "BenchmarkGone") {
		t.Fatalf("filtered-out benchmarks appear in output:\n%s", got)
	}
	// The same snapshots without the filter must fail on both counts.
	out.Reset()
	if !compare(base, cur, 15, nil, &out) {
		t.Fatal("unfiltered compare missed the regression")
	}
}

func TestCompareGeomeanRatio(t *testing.T) {
	// Ratios 0.5 and 0.125: geomean = sqrt(0.0625) = 0.25 => 4x speed-up.
	base := snap(map[string]float64{"BenchmarkA": 1000, "BenchmarkB": 1000})
	cur := snap(map[string]float64{"BenchmarkA": 500, "BenchmarkB": 125})
	var out strings.Builder
	if compare(base, cur, 15, nil, &out) {
		t.Fatalf("speed-up failed the gate:\n%s", out.String())
	}
	got := out.String()
	if !strings.Contains(got, "geomean") || !strings.Contains(got, "0.250x") {
		t.Fatalf("geomean ratio not reported as 0.250x:\n%s", got)
	}
	if !strings.Contains(got, "4.0x speed-up") {
		t.Fatalf("speed-up factor not reported:\n%s", got)
	}
}

func TestCompareGeomeanSkipsZeroes(t *testing.T) {
	base := snap(map[string]float64{"BenchmarkA": 100, "BenchmarkZero": 0})
	cur := snap(map[string]float64{"BenchmarkA": 100, "BenchmarkZero": 0})
	var out strings.Builder
	if compare(base, cur, 15, nil, &out) {
		t.Fatalf("zero ns/op pair failed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "over 1 benchmark(s)") {
		t.Fatalf("zero-valued benchmark not excluded from geomean:\n%s", out.String())
	}
}

func allocSnap(benchmarks map[string]BenchStat) Snapshot {
	return Snapshot{Schema: 1, Benchmarks: benchmarks}
}

func TestCompareDetectsAllocRegression(t *testing.T) {
	base := allocSnap(map[string]BenchStat{
		"BenchmarkA": {NsPerOp: 100, AllocsPerOp: 10, BytesPerOp: 1024, Iterations: 100},
	})
	cur := allocSnap(map[string]BenchStat{
		"BenchmarkA": {NsPerOp: 100, AllocsPerOp: 20, BytesPerOp: 1024, Iterations: 100},
	})
	var out strings.Builder
	if !compare(base, cur, 15, nil, &out) {
		t.Fatal("doubled allocs/op under a 15% gate did not fail")
	}
	if !strings.Contains(out.String(), "ALLOCS/OP REGRESSION") {
		t.Fatalf("allocs regression not flagged:\n%s", out.String())
	}
}

func TestCompareDetectsBytesRegression(t *testing.T) {
	base := allocSnap(map[string]BenchStat{
		"BenchmarkA": {NsPerOp: 100, AllocsPerOp: 10, BytesPerOp: 1024, Iterations: 100},
	})
	cur := allocSnap(map[string]BenchStat{
		"BenchmarkA": {NsPerOp: 100, AllocsPerOp: 10, BytesPerOp: 2048, Iterations: 100},
	})
	var out strings.Builder
	if !compare(base, cur, 15, nil, &out) {
		t.Fatal("doubled B/op under a 15% gate did not fail")
	}
	if !strings.Contains(out.String(), "B/OP REGRESSION") {
		t.Fatalf("bytes regression not flagged:\n%s", out.String())
	}
}

func TestCompareAllocNoiseFloors(t *testing.T) {
	// 1 -> 2 allocs is +100% but only +1 alloc; 32 -> 80 B is +150% but
	// under the 64 B floor; neither may fail the gate. Benchmarks that never
	// called ReportAllocs record zeroes and must stay inert too.
	base := allocSnap(map[string]BenchStat{
		"BenchmarkTiny":    {NsPerOp: 100, AllocsPerOp: 1, BytesPerOp: 32, Iterations: 100},
		"BenchmarkNoStats": {NsPerOp: 100, Iterations: 100},
	})
	cur := allocSnap(map[string]BenchStat{
		"BenchmarkTiny":    {NsPerOp: 100, AllocsPerOp: 2, BytesPerOp: 80, Iterations: 100},
		"BenchmarkNoStats": {NsPerOp: 100, Iterations: 100},
	})
	var out strings.Builder
	if compare(base, cur, 15, nil, &out) {
		t.Fatalf("sub-floor alloc jitter failed the gate:\n%s", out.String())
	}
}
