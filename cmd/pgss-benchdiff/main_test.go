package main

import (
	"strings"
	"testing"
)

func snap(benchmarks map[string]float64) Snapshot {
	s := Snapshot{Schema: 1, Benchmarks: map[string]BenchStat{}}
	for name, ns := range benchmarks {
		s.Benchmarks[name] = BenchStat{NsPerOp: ns, Iterations: 100}
	}
	return s
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	base := snap(map[string]float64{"BenchmarkA": 100, "BenchmarkB": 200})
	cur := snap(map[string]float64{"BenchmarkA": 101})
	var out strings.Builder
	if !compare(base, cur, 15, &out) {
		t.Fatal("benchmark missing from head did not fail the gate")
	}
	got := out.String()
	if !strings.Contains(got, "BenchmarkB") || !strings.Contains(got, "MISSING") {
		t.Fatalf("missing benchmark not reported by name:\n%s", got)
	}
	if !strings.Contains(got, "missing from the head snapshot") {
		t.Fatalf("no clear missing-benchmark message:\n%s", got)
	}
}

func TestCompareDetectsRegression(t *testing.T) {
	base := snap(map[string]float64{"BenchmarkA": 100, "BenchmarkB": 100})
	cur := snap(map[string]float64{"BenchmarkA": 130, "BenchmarkB": 105})
	var out strings.Builder
	if !compare(base, cur, 15, &out) {
		t.Fatal("30% regression under a 15% gate did not fail")
	}
	got := out.String()
	if !strings.Contains(got, "REGRESSION") || !strings.Contains(got, "regression beyond 15%") {
		t.Fatalf("regression not flagged:\n%s", got)
	}
}

func TestCompareCleanRunPasses(t *testing.T) {
	base := snap(map[string]float64{"BenchmarkA": 100, "BenchmarkB": 200})
	cur := snap(map[string]float64{"BenchmarkA": 110, "BenchmarkB": 190})
	var out strings.Builder
	if compare(base, cur, 15, &out) {
		t.Fatalf("within-gate deltas failed the compare:\n%s", out.String())
	}
}

func TestCompareNewBenchmarkIsNotAFailure(t *testing.T) {
	base := snap(map[string]float64{"BenchmarkA": 100})
	cur := snap(map[string]float64{"BenchmarkA": 100, "BenchmarkNew": 50})
	var out strings.Builder
	if compare(base, cur, 15, &out) {
		t.Fatalf("a benchmark new in head must not fail the gate:\n%s", out.String())
	}
}

func TestCompareNoOverlap(t *testing.T) {
	// Nothing in common and nothing missing: an empty baseline matches any
	// head (the first run ever has no baseline to hold the head to).
	var out strings.Builder
	if compare(snap(nil), snap(map[string]float64{"BenchmarkA": 100}), 15, &out) {
		t.Fatal("empty baseline failed the gate")
	}
	// But a baseline whose every benchmark vanished is all-missing: fail.
	out.Reset()
	if !compare(snap(map[string]float64{"BenchmarkA": 100}), snap(nil), 15, &out) {
		t.Fatal("fully vanished benchmark set passed the gate")
	}
}
