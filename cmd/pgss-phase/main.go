// Command pgss-phase analyses the phase structure of a benchmark: it
// classifies the BBV stream at a chosen granularity and threshold and
// prints the phase table, transition statistics and the threshold-sweep
// characteristics of Fig 10.
//
// Usage:
//
//	pgss-phase -bench 300.twolf [-ops N] [-gran 10000] [-threshold 0.05]
//	pgss-phase -bench 300.twolf -sweep
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"pgss"
	"pgss/internal/phase"
	"pgss/internal/stats"
)

func main() {
	bench := flag.String("bench", "300.twolf", "benchmark name")
	ops := flag.Uint64("ops", 0, "program length in ops (0 = benchmark default)")
	gran := flag.Uint64("gran", 10_000, "BBV window granularity in ops")
	threshold := flag.Float64("threshold", 0.05, "BBV angle threshold (fraction of π)")
	sweep := flag.Bool("sweep", false, "sweep thresholds 0..0.5π (Fig 10 style)")
	flag.Parse()

	spec, err := pgss.Benchmark(*bench)
	check(err)
	prof, err := pgss.Record(spec, *ops)
	check(err)
	sigma, err := prof.IntervalStdDev(*gran)
	check(err)
	fmt.Printf("%s: %d ops, true IPC %.4f, interval σ@%d = %.4f\n\n",
		prof.Benchmark, prof.TotalOps, prof.TrueIPC(), *gran, sigma)

	ipcs, err := prof.IPCSeries(*gran)
	check(err)
	bbvs, err := prof.BBVSeries(*gran)
	check(err)
	n := prof.NumFullWindows(*gran)
	if len(ipcs) < n {
		n = len(ipcs)
	}
	if len(bbvs) < n {
		n = len(bbvs)
	}

	analyse := func(th float64) (*phase.Table, []int) {
		table := phase.MustNewTable(th * math.Pi)
		ids := table.ClassifySeries(bbvs[:n], *gran)
		return table, ids
	}

	if *sweep {
		fmt.Printf("%-12s %8s %12s %18s %12s\n",
			"threshold", "phases", "transitions", "avg_interval(ops)", "ipc_var(σ)")
		for th := 0.0; th <= 0.50001; th += 0.025 {
			table, ids := analyse(th)
			fmt.Printf(".%03dπ %11d %12d %18.0f %12.3f\n",
				int(th*1000+0.5), table.NumPhases(), table.Transitions,
				table.MeanRunLength()*float64(*gran), withinPhaseSigma(table, ids, ipcs[:n], sigma))
		}
		return
	}

	table, ids := analyse(*threshold)
	fmt.Printf("threshold .%03dπ: %d phases, %d transitions, mean run %.0f ops\n\n",
		int(*threshold*1000+0.5), table.NumPhases(), table.Transitions,
		table.MeanRunLength()*float64(*gran))
	fmt.Printf("%6s %10s %8s %10s %10s\n", "phase", "windows", "ops%", "mean_ipc", "ipc_σ")
	var total uint64
	for _, p := range table.Phases() {
		total += p.Ops
	}
	acc := make([]stats.Running, table.NumPhases())
	for i := 0; i < n; i++ {
		acc[ids[i]].Add(ipcs[i])
	}
	for _, p := range table.Phases() {
		fmt.Printf("%6d %10d %7.2f%% %10.4f %10.4f\n",
			p.ID, p.Intervals, float64(p.Ops)/float64(total)*100,
			acc[p.ID].Mean(), acc[p.ID].StdDev())
	}
}

// withinPhaseSigma is the ops-weighted within-phase IPC standard deviation
// in units of the benchmark σ.
func withinPhaseSigma(table *phase.Table, ids []int, ipcs []float64, sigma float64) float64 {
	acc := make([]stats.Running, table.NumPhases())
	for i, id := range ids {
		acc[id].Add(ipcs[i])
	}
	var weighted float64
	var count uint64
	for id := range acc {
		if acc[id].N() >= 2 {
			weighted += float64(acc[id].N()) * acc[id].StdDev()
			count += acc[id].N()
		}
	}
	if count == 0 || sigma == 0 {
		return 0
	}
	return weighted / float64(count) / sigma
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pgss-phase:", err)
		os.Exit(1)
	}
}
