// Command pgss-phase analyses the phase structure of a benchmark: it
// classifies the BBV stream at a chosen granularity and threshold and
// prints the phase table, transition statistics and the threshold-sweep
// characteristics of Fig 10.
//
// Usage:
//
//	pgss-phase -bench 300.twolf [-ops N] [-gran 10000] [-threshold 0.05]
//	pgss-phase -bench 300.twolf -sweep
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"pgss"
	"pgss/internal/bbv"
	"pgss/internal/phase"
	"pgss/internal/stats"
)

func main() {
	bench := flag.String("bench", "300.twolf", "benchmark name")
	ops := flag.Uint64("ops", 0, "program length in ops (0 = benchmark default)")
	gran := flag.Uint64("gran", 10_000, "BBV window granularity in ops")
	threshold := flag.Float64("threshold", 0.05, "BBV angle threshold (fraction of π)")
	sweep := flag.Bool("sweep", false, "sweep thresholds 0..0.5π (Fig 10 style)")
	flag.Parse()

	spec, err := pgss.Benchmark(*bench)
	check(err)
	prof, err := pgss.Record(spec, *ops)
	check(err)
	sigma, err := prof.IntervalStdDev(*gran)
	check(err)
	fmt.Printf("%s: %d ops, true IPC %.4f, interval σ@%d = %.4f\n\n",
		prof.Benchmark, prof.TotalOps, prof.TrueIPC(), *gran, sigma)

	ipcs, err := prof.IPCSeries(*gran)
	check(err)
	bbvs, err := prof.BBVSeries(*gran)
	check(err)
	n := prof.NumFullWindows(*gran)
	if len(ipcs) < n {
		n = len(ipcs)
	}
	if len(bbvs) < n {
		n = len(bbvs)
	}

	analyse := func(th float64) (*phase.Table, []int) {
		table := phase.MustNewTable(th * math.Pi)
		ids := table.ClassifySeries(bbvs[:n], *gran)
		return table, ids
	}

	if *sweep {
		fmt.Printf("%-12s %8s %12s %18s %12s\n",
			"threshold", "phases", "transitions", "avg_interval(ops)", "ipc_var(σ)")
		for th := 0.0; th <= 0.50001; th += 0.025 {
			table, ids := analyse(th)
			fmt.Printf(".%03dπ %11d %12d %18.0f %12.3f\n",
				int(th*1000+0.5), table.NumPhases(), table.Transitions,
				table.MeanRunLength()*float64(*gran), withinPhaseSigma(table, ids, ipcs[:n], sigma))
		}
		return
	}

	table, ids := analyse(*threshold)
	fmt.Printf("threshold .%03dπ: %d phases, %d transitions, mean run %.0f ops\n\n",
		int(*threshold*1000+0.5), table.NumPhases(), table.Transitions,
		table.MeanRunLength()*float64(*gran))
	fmt.Printf("%6s %10s %8s %10s %10s\n", "phase", "windows", "ops%", "mean_ipc", "ipc_σ")
	var total uint64
	for _, p := range table.Phases() {
		total += p.Ops
	}
	acc := make([]stats.Running, table.NumPhases())
	for i := 0; i < n; i++ {
		acc[ids[i]].Add(ipcs[i])
	}
	for _, p := range table.Phases() {
		fmt.Printf("%6d %10d %7.2f%% %10.4f %10.4f\n",
			p.ID, p.Intervals, float64(p.Ops)/float64(total)*100,
			acc[p.ID].Mean(), acc[p.ID].StdDev())
	}
	printMAVDiagnostics(prof, table, ids, n, *gran)
}

// printMAVDiagnostics prints the per-phase memory-access-vector table:
// access density (the MAV counts loads and stores combined) and how
// concentrated each phase's accesses are on its hottest hashed lines.
func printMAVDiagnostics(prof *pgss.Profile, table *phase.Table, ids []int, n int, gran uint64) {
	if !prof.HasMAV() {
		fmt.Printf("\n(no MAV channel: profile recorded with MAVBits=0)\n")
		return
	}
	if gran%prof.BBVOps != 0 {
		fmt.Printf("\n(MAV diagnostics skipped: granularity %d not a multiple of MAV granularity %d)\n",
			gran, prof.BBVOps)
		return
	}
	width := 1 << prof.MAVBits
	sums := make([]bbv.Vector, table.NumPhases())
	win := make(bbv.Vector, width)
	for i := 0; i < n; i++ {
		ok, err := prof.MAVWindowInto(win, uint64(i)*gran, gran)
		check(err)
		if !ok {
			break
		}
		if sums[ids[i]] == nil {
			sums[ids[i]] = make(bbv.Vector, width)
		}
		sums[ids[i]].Add(win)
	}

	fmt.Printf("\nMAV channel (%d hashed lines; density counts loads+stores per op):\n", width)
	fmt.Printf("%6s %12s %12s %10s %10s\n",
		"phase", "accesses", "density", "top_line%", "top8_line%")
	for _, p := range table.Phases() {
		v := sums[p.ID]
		if v == nil || p.Ops == 0 {
			continue
		}
		var total float64
		top := make([]float64, 0, len(v))
		for _, c := range v {
			total += c
			top = append(top, c)
		}
		if total == 0 {
			continue
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(top)))
		top8 := 0.0
		for i := 0; i < 8 && i < len(top); i++ {
			top8 += top[i]
		}
		fmt.Printf("%6d %12.0f %12.4f %9.2f%% %9.2f%%\n",
			p.ID, total, total/float64(p.Ops), top[0]/total*100, top8/total*100)
	}
}

// withinPhaseSigma is the ops-weighted within-phase IPC standard deviation
// in units of the benchmark σ.
func withinPhaseSigma(table *phase.Table, ids []int, ipcs []float64, sigma float64) float64 {
	acc := make([]stats.Running, table.NumPhases())
	for i, id := range ids {
		acc[id].Add(ipcs[i])
	}
	var weighted float64
	var count uint64
	for id := range acc {
		if acc[id].N() >= 2 {
			weighted += float64(acc[id].N()) * acc[id].StdDev()
			count += acc[id].N()
		}
	}
	if count == 0 || sigma == 0 {
		return 0
	}
	return weighted / float64(count) / sigma
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pgss-phase:", err)
		os.Exit(1)
	}
}
