// Benchmark harness: one testing.B benchmark per paper figure, each
// regenerating that figure's rows/series and reporting its headline metric
// via b.ReportMetric, plus the design-choice ablations from DESIGN.md and
// microbenchmarks of the simulator substrate.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The figure benches run at a reduced benchmark size so the full suite
// regenerates in minutes; `cmd/pgss-bench` regenerates the figures at full
// size with on-disk profile caching.
package pgss_test

import (
	"context"
	"sync"
	"testing"

	"pgss"
	"pgss/internal/bbv"
	"pgss/internal/cluster"
	"pgss/internal/cpu"
	"pgss/internal/experiments"
	"pgss/internal/faultinject"
	"pgss/internal/workload"
)

// benchSuite is shared across figure benchmarks so profiles record once.
var (
	benchSuiteOnce sync.Once
	benchSuiteVal  *experiments.Suite
)

func benchSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	benchSuiteOnce.Do(func() {
		benchSuiteVal = experiments.MustNewSuite(experiments.Options{
			Scale:    10,
			TotalOps: 30_000_000,
			HashSeed: 42,
			Quiet:    true,
		})
	})
	return benchSuiteVal
}

// figBench regenerates one figure per iteration and reports the chosen
// metrics.
func figBench(b *testing.B, id string, metrics ...string) {
	s := benchSuite(b)
	// Warm the profile cache outside the timed region.
	if _, err := experiments.Run(s, id); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var rep interface{ Metric(string) float64 }
	_ = rep
	for i := 0; i < b.N; i++ {
		r, err := experiments.Run(s, id)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, m := range metrics {
				if v, ok := r.Metrics[m]; ok {
					b.ReportMetric(v, m)
				}
			}
		}
	}
}

// BenchmarkFig02 regenerates Figure 2 (gzip IPC vs ops at four sampling
// periods) and reports how much fine-grained variation coarse sampling
// hides.
func BenchmarkFig02(b *testing.B) {
	figBench(b, "fig2", "sigma_finest_over_coarsest")
}

// BenchmarkFig03 regenerates Figure 3 (wupwise IPC over time and its
// polymodal distribution).
func BenchmarkFig03(b *testing.B) {
	figBench(b, "fig3", "distribution_modes")
}

// BenchmarkFig07 regenerates Figure 7 (2-D IPC-change vs BBV-change
// distribution over the ten benchmarks).
func BenchmarkFig07(b *testing.B) {
	figBench(b, "fig7", "large_ipc_changes_above_.05pi_pct")
}

// BenchmarkFig08 regenerates Figure 8 (% of IPC changes caught vs
// threshold).
func BenchmarkFig08(b *testing.B) {
	figBench(b, "fig8", "catch_.05pi_.3sigma_pct")
}

// BenchmarkFig09 regenerates Figure 9 (false-positive rate vs threshold).
func BenchmarkFig09(b *testing.B) {
	figBench(b, "fig9", "falsepos_.05pi_.3sigma_pct")
}

// BenchmarkFig10 regenerates Figure 10 (threshold effects on 300.twolf
// phase characteristics).
func BenchmarkFig10(b *testing.B) {
	figBench(b, "fig10", "phases_.05pi", "ipcvar_.05pi_sigma")
}

// BenchmarkFig11 regenerates Figure 11 (PGSS error across BBV periods and
// thresholds with A/G-means).
func BenchmarkFig11(b *testing.B) {
	figBench(b, "fig11", "best_amean_pct")
}

// BenchmarkFig12 regenerates Figure 12 (error and detailed-simulation
// volume for all techniques) and reports the paper's headline ratios.
func BenchmarkFig12(b *testing.B) {
	figBench(b, "fig12",
		"detail_ratio_smarts_over_pgss",
		"detail_ratio_simpoint_over_pgss",
		"detail_ratio_turbo_over_pgss",
		"err_amean_PGSS(best)")
}

// BenchmarkFig13 regenerates Figure 13 (total simulation time per
// technique under the paper's per-mode rates).
func BenchmarkFig13(b *testing.B) {
	figBench(b, "fig13", "detailed_sec_PGSS-Sim", "total_sec_PGSS-Sim")
}

// Ablation benchmarks (DESIGN.md): each runs the corresponding slice of
// the ablation report.

// BenchmarkAblationDistance compares the angle metric with SimPoint's
// Manhattan distance for online phase detection.
func BenchmarkAblationDistance(b *testing.B) {
	figBench(b, "ablation", "angle_err", "manhattan_best_err")
}

// BenchmarkAblationSpread measures the sample spread rule's effect.
func BenchmarkAblationSpread(b *testing.B) {
	figBench(b, "ablation", "spread_on_err", "spread_off_err")
}

// BenchmarkAblationClassify measures the current-phase-first comparison
// savings.
func BenchmarkAblationClassify(b *testing.B) {
	figBench(b, "ablation", "comparisons_saved_pct")
}

// BenchmarkAblationConfidence compares confidence-bound stopping with
// fixed per-phase budgets.
func BenchmarkAblationConfidence(b *testing.B) {
	figBench(b, "ablation", "confidence_err", "fixed8_err", "fixed32_err")
}

// BenchmarkAblationHashBits sweeps the BBV hash width.
func BenchmarkAblationHashBits(b *testing.B) {
	figBench(b, "ablation", "hash3_err", "hash5_err", "hash8_err")
}

// Substrate microbenchmarks.

func buildBenchProgram(b *testing.B) *pgss.Program {
	b.Helper()
	spec, err := workload.Get("164.gzip")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := spec.Build(2_000_000)
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

// BenchmarkSimulatorDetailed measures cycle-accurate simulation speed.
func BenchmarkSimulatorDetailed(b *testing.B) {
	prog := buildBenchProgram(b)
	core, err := cpu.NewCore(cpu.MustNewMachine(prog), cpu.DefaultCoreConfig())
	if err != nil {
		b.Fatal(err)
	}
	var r cpu.Retired
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !core.StepDetailed(&r) {
			b.StopTimer()
			core.M.Reset()
			b.StartTimer()
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mops/s")
}

// BenchmarkSimulatorWarm measures functional-warming speed (the SMARTS and
// PGSS fast-forward mode).
func BenchmarkSimulatorWarm(b *testing.B) {
	prog := buildBenchProgram(b)
	core, err := cpu.NewCore(cpu.MustNewMachine(prog), cpu.DefaultCoreConfig())
	if err != nil {
		b.Fatal(err)
	}
	var r cpu.Retired
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !core.StepWarm(&r) {
			b.StopTimer()
			core.M.Reset()
			b.StartTimer()
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mops/s")
}

// BenchmarkSimulatorFF measures plain fast-forward speed (SimPoint's
// profiling mode).
func BenchmarkSimulatorFF(b *testing.B) {
	prog := buildBenchProgram(b)
	core, err := cpu.NewCore(cpu.MustNewMachine(prog), cpu.DefaultCoreConfig())
	if err != nil {
		b.Fatal(err)
	}
	var r cpu.Retired
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !core.StepFF(&r) {
			b.StopTimer()
			core.M.Reset()
			b.StartTimer()
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mops/s")
}

// BenchmarkBBVTracker measures the per-branch BBV tracking overhead.
func BenchmarkBBVTracker(b *testing.B) {
	tr := bbv.NewTracker(bbv.MustNewHash(5, 42))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.RetireOps(7)
		tr.TakenBranch(uint64(i) * 4)
	}
}

// BenchmarkKMeans measures SimPoint clustering of a realistic BBV set.
func BenchmarkKMeans(b *testing.B) {
	s := benchSuite(b)
	p, err := s.Profile("164.gzip")
	if err != nil {
		b.Fatal(err)
	}
	points, err := p.BBVSeries(100_000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.KMeans(points, cluster.Config{K: 10, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPGSSReplay measures a full PGSS pass over a recorded profile.
func BenchmarkPGSSReplay(b *testing.B) {
	s := benchSuite(b)
	p, err := s.Profile("164.gzip")
	if err != nil {
		b.Fatal(err)
	}
	cfg := pgss.DefaultPGSSConfig(pgss.DefaultScale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := pgss.RunPGSS(p, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// campaignMacro resolves every artifact a campaign needs through the
// suite's store — the profile and the checkpoint library of each benchmark
// (cold: recorded by detailed simulation; warm: loaded from the store) —
// then runs a multi-seed replay campaign over them. Checkpoint-accelerated
// live sampling is timed separately (its per-run simulation cost is the
// same cold and warm and would mask the dedup ratio this benchmark
// measures).
func campaignMacro(b *testing.B, s *experiments.Suite) {
	b.Helper()
	for _, name := range []string{"197.parser", "177.mesa"} {
		if _, err := s.CheckpointLibrary(name); err != nil {
			b.Fatal(err)
		}
	}
	specs := experiments.CampaignSpecs(
		[]string{"197.parser", "177.mesa"}, []string{"PGSS", "2PSS", "RSS"}, 3)
	for _, sp := range specs {
		if _, err := s.CampaignRun(context.Background(), sp); err != nil {
			b.Fatalf("%v: %v", sp, err)
		}
	}
}

// BenchmarkCampaignMacro measures the artifact store's reason to exist:
// the same campaign cold (every profile and checkpoint library recorded
// into an empty store) versus warm (a fresh suite — a new process — over
// an already-populated store). The cold/warm ns/op ratio is the
// cross-campaign dedup speedup.
func BenchmarkCampaignMacro(b *testing.B) {
	opts := experiments.Options{
		Scale: 10, TotalOps: 400_000, HashSeed: 42, Quiet: true,
		ArtifactDir: "store",
	}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o := opts
			o.FS = faultinject.NewMemFS()
			campaignMacro(b, experiments.MustNewSuite(o))
		}
	})
	b.Run("warm", func(b *testing.B) {
		o := opts
		o.FS = faultinject.NewMemFS()
		// Populate the store outside the timed region; each iteration then
		// opens a fresh suite over it, as a new campaign process would.
		campaignMacro(b, experiments.MustNewSuite(o))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			campaignMacro(b, experiments.MustNewSuite(o))
		}
	})
}
