// Package pgss is the public API of the PGSS-Sim reproduction: sampled
// microarchitecture simulation with Phase-Guided Small-Sample Simulation
// (Kihm, Strom & Connors, ISPASS 2007) and the baseline techniques it is
// evaluated against (SMARTS, TurboSMARTS, SimPoint, online SimPoint), on
// top of a cycle-accurate 4-wide in-order core simulator and a synthetic
// SPEC2000-like benchmark suite.
//
// # Quick start
//
//	spec, _ := pgss.Benchmark("164.gzip")
//	prof, _ := pgss.Record(spec, 10_000_000) // one detailed pass: the truth
//	res, st, _ := pgss.RunPGSS(prof, pgss.DefaultPGSSConfig(pgss.DefaultScale))
//	fmt.Printf("true %.3f est %.3f err %.2f%% with %d detailed ops (%d phases)\n",
//		res.TrueIPC, res.EstimatedIPC, res.ErrorPct(),
//		res.Costs.DetailedTotal(), st.Phases)
//
// All window parameters (sampling periods, interval sizes, the spread
// rule) are the paper's values divided by a scale factor; DefaultScale=10
// corresponds to benchmarks one tenth of SPEC2000 reference length. Sample
// and warm-up sizes (1k/3k ops) are absolute, as in the paper.
package pgss

import (
	"context"
	"math"

	"pgss/internal/bbv"
	"pgss/internal/campaign"
	"pgss/internal/checkpoint"
	"pgss/internal/cmp"
	"pgss/internal/core"
	"pgss/internal/cpu"
	"pgss/internal/parallel"
	"pgss/internal/pgsserrors"
	"pgss/internal/profile"
	"pgss/internal/program"
	"pgss/internal/sampling"
	"pgss/internal/trace"
	"pgss/internal/workload"
)

// Error taxonomy. Every failure the library returns is classified under
// one of these sentinels; test with errors.Is, or use ErrorKind for a
// stable string label. Configuration types re-exported below additionally
// carry a Validate() method returning ErrInvalidConfig-classed errors,
// and every Run* entry point validates its configuration up front.
var (
	// ErrInvalidConfig marks configurations rejected by Validate.
	ErrInvalidConfig = pgsserrors.ErrInvalidConfig
	// ErrMisalignedWindow marks window requests not aligned to the
	// profile's recording granularities.
	ErrMisalignedWindow = pgsserrors.ErrMisalignedWindow
	// ErrBudgetExceeded marks runs stopped by a context deadline or
	// cancellation (op/time budgets).
	ErrBudgetExceeded = pgsserrors.ErrBudgetExceeded
	// ErrCacheCorrupt marks unreadable or inconsistent on-disk profiles.
	ErrCacheCorrupt = pgsserrors.ErrCacheCorrupt
	// ErrRunPanicked marks campaign runs that panicked and were recovered.
	ErrRunPanicked = pgsserrors.ErrRunPanicked
	// ErrInterrupted marks campaign runs cancelled before completion.
	ErrInterrupted = pgsserrors.ErrInterrupted
)

// ErrorKind returns the taxonomy class of err ("invalid-config",
// "misaligned-window", "budget-exceeded", "cache-corrupt", "run-panicked",
// "interrupted", "other", or "" for nil).
func ErrorKind(err error) string { return pgsserrors.Kind(err) }

// DefaultScale is the standard parameter scale divisor relative to the
// paper's SPEC-scale values.
const DefaultScale uint64 = 10

// Re-exported types. Aliases keep the full method sets usable from outside
// the module while the implementation lives in internal packages.
type (
	// Program is an executable image for the simulated machine.
	Program = program.Program
	// WorkloadSpec describes a synthetic benchmark.
	WorkloadSpec = workload.Spec
	// KernelSpec describes one kernel of a benchmark.
	KernelSpec = workload.KernelSpec
	// Segment is one schedule entry of a benchmark.
	Segment = workload.Segment
	// Profile is a recorded detailed run that sampling techniques replay.
	Profile = profile.Profile
	// Result is the outcome of one estimation run.
	Result = sampling.Result
	// Costs tallies simulated ops by execution mode.
	Costs = sampling.Costs
	// Target is an execution a sequential sampling controller drives.
	Target = sampling.Target
	// PGSSConfig parameterises PGSS-Sim.
	PGSSConfig = core.Config
	// PGSSStats carries PGSS-specific diagnostics.
	PGSSStats = core.Stats
	// SMARTSConfig parameterises SMARTS.
	SMARTSConfig = sampling.SMARTSConfig
	// TurboSMARTSConfig parameterises TurboSMARTS.
	TurboSMARTSConfig = sampling.TurboSMARTSConfig
	// SimPointConfig parameterises offline SimPoint.
	SimPointConfig = sampling.SimPointConfig
	// OnlineSimPointConfig parameterises the online SimPoint baseline.
	OnlineSimPointConfig = sampling.OnlineSimPointConfig
	// CoreConfig sizes the simulated processor.
	CoreConfig = cpu.CoreConfig
)

// Kernel kinds for custom WorkloadSpec definitions.
const (
	// KernelStream sweeps an array with a fixed stride.
	KernelStream = workload.Stream
	// KernelPointer chases a random permutation (serialised loads).
	KernelPointer = workload.Pointer
	// KernelCompute runs register-only arithmetic chains.
	KernelCompute = workload.Compute
	// KernelBranchy branches on pseudo-random data.
	KernelBranchy = workload.Branchy
)

// Benchmarks returns the names of the built-in synthetic benchmarks.
func Benchmarks() []string { return workload.Names() }

// Benchmark returns the spec of a built-in benchmark.
func Benchmark(name string) (*WorkloadSpec, error) { return workload.Get(name) }

// DefaultCoreConfig is the paper's evaluation machine: 4-wide in-order,
// split 4-way 64 KB L1 I/D, unified 1 MB L2, gshare prediction.
func DefaultCoreConfig() CoreConfig { return cpu.DefaultCoreConfig() }

// Record builds the benchmark at the given length (0 = its default) and
// runs one full detailed simulation, returning the recorded profile. The
// profile holds the ground-truth IPC and everything the sampling
// techniques need for replay.
func Record(spec *WorkloadSpec, totalOps uint64) (*Profile, error) {
	return RecordWithCore(spec, totalOps, DefaultCoreConfig())
}

// RecordWithCore is Record with an explicit processor configuration (for
// design-space exploration).
func RecordWithCore(spec *WorkloadSpec, totalOps uint64, cc CoreConfig) (*Profile, error) {
	prog, err := spec.Build(totalOps)
	if err != nil {
		return nil, err
	}
	return RecordProgram(prog, cc)
}

// RecordContext is Record under a context: cancellation or deadline expiry
// stops the detailed pass with an ErrBudgetExceeded-classed error.
func RecordContext(ctx context.Context, spec *WorkloadSpec, totalOps uint64) (*Profile, error) {
	prog, err := spec.Build(totalOps)
	if err != nil {
		return nil, err
	}
	return RecordProgramContext(ctx, prog, DefaultCoreConfig())
}

// RecordProgram runs one full detailed simulation of an arbitrary program.
func RecordProgram(prog *Program, cc CoreConfig) (*Profile, error) {
	return RecordProgramContext(context.Background(), prog, cc)
}

// RecordProgramContext is RecordProgram under a context.
func RecordProgramContext(ctx context.Context, prog *Program, cc CoreConfig) (*Profile, error) {
	m, err := cpu.NewMachine(prog)
	if err != nil {
		return nil, err
	}
	c, err := cpu.NewCore(m, cc)
	if err != nil {
		return nil, err
	}
	hash, err := bbv.NewHash(bbv.DefaultHashBits, defaultHashSeed)
	if err != nil {
		return nil, err
	}
	return profile.RecordContext(ctx, c, hash, profile.DefaultConfig())
}

// defaultHashSeed fixes the BBV hash bit selection across the library.
const defaultHashSeed = 42

// NewTarget wraps a profile as a replay target for the sequential
// controllers (PGSS, SMARTS, Full).
func NewTarget(p *Profile) Target { return sampling.NewProfileTarget(p) }

// NewLiveTarget drives a fresh simulation of the program directly instead
// of replaying a profile; trueIPC may be zero when unknown. The target
// tracks both signature channels, so any PGSSConfig.Channel works live.
func NewLiveTarget(prog *Program, cc CoreConfig, trueIPC float64) (Target, error) {
	m, err := cpu.NewMachine(prog)
	if err != nil {
		return nil, err
	}
	c, err := cpu.NewCore(m, cc)
	if err != nil {
		return nil, err
	}
	hash, err := bbv.NewHash(bbv.DefaultHashBits, defaultHashSeed)
	if err != nil {
		return nil, err
	}
	mh, err := bbv.NewMAVHash(bbv.DefaultMAVBits, defaultHashSeed)
	if err != nil {
		return nil, err
	}
	t := sampling.NewLiveTarget(c, hash, 0, trueIPC)
	t.EnableMAV(mh)
	return t, nil
}

// DefaultPGSSConfig returns the paper's best overall PGSS configuration
// (1M-op BBV period, .05π threshold) at the given scale.
func DefaultPGSSConfig(scale uint64) PGSSConfig { return core.DefaultConfig(scale) }

// RunPGSS runs Phase-Guided Small-Sample Simulation over a profile.
func RunPGSS(p *Profile, cfg PGSSConfig) (Result, PGSSStats, error) {
	return core.Run(sampling.NewProfileTarget(p), cfg)
}

// RunPGSSOn runs PGSS over any target (e.g. a live simulation).
func RunPGSSOn(t Target, cfg PGSSConfig) (Result, PGSSStats, error) {
	return core.Run(t, cfg)
}

// RunPGSSContext is RunPGSS under a context: cancellation or deadline
// expiry stops the run between windows with an ErrBudgetExceeded-classed
// error carrying the partial statistics.
func RunPGSSContext(ctx context.Context, p *Profile, cfg PGSSConfig) (Result, PGSSStats, error) {
	return core.RunContext(ctx, sampling.NewProfileTarget(p), cfg)
}

// RunPGSSOnContext is RunPGSSOn under a context.
func RunPGSSOnContext(ctx context.Context, t Target, cfg PGSSConfig) (Result, PGSSStats, error) {
	return core.RunContext(ctx, t, cfg)
}

// ParallelOptions sets the parallel engine's concurrency: Shards
// concurrent fast-forward shards and SampleWorkers concurrent detailed
// sample executors (each ≤ 0 defaults to GOMAXPROCS).
type ParallelOptions = parallel.Options

// RunPGSSParallel runs PGSS over a profile on the checkpoint-sharded
// parallel engine. The result is bit-identical to RunPGSS on the same
// profile for every concurrency setting.
func RunPGSSParallel(p *Profile, cfg PGSSConfig, opts ParallelOptions) (Result, PGSSStats, error) {
	return parallel.Run(context.Background(), parallel.NewProfileSource(p), cfg, opts)
}

// RunPGSSParallelContext is RunPGSSParallel under a context.
func RunPGSSParallelContext(ctx context.Context, p *Profile, cfg PGSSConfig, opts ParallelOptions) (Result, PGSSStats, error) {
	return parallel.Run(ctx, parallel.NewProfileSource(p), cfg, opts)
}

// RunPGSSLiveParallel runs PGSS live — shards fast-forward from the
// checkpoint library concurrently and samples execute detailed simulation
// on a worker pool of cores. The result is invariant to the concurrency
// setting; totalOps is the recorded program length the library covers.
func RunPGSSLiveParallel(ctx context.Context, lib *CheckpointLibrary, prog *Program, cc CoreConfig, totalOps uint64, trueIPC float64, cfg PGSSConfig, opts ParallelOptions) (Result, PGSSStats, error) {
	hash, err := bbv.NewHash(bbv.DefaultHashBits, defaultHashSeed)
	if err != nil {
		return Result{}, PGSSStats{}, err
	}
	src, err := parallel.NewLiveSource(lib, hash, func() (*cpu.Core, error) {
		m, err := cpu.NewMachine(prog)
		if err != nil {
			return nil, err
		}
		return cpu.NewCore(m, cc)
	}, totalOps, trueIPC)
	if err != nil {
		return Result{}, PGSSStats{}, err
	}
	mh, err := bbv.NewMAVHash(bbv.DefaultMAVBits, defaultHashSeed)
	if err != nil {
		return Result{}, PGSSStats{}, err
	}
	src.EnableMAV(mh)
	return parallel.Run(ctx, src, cfg, opts)
}

// DefaultSMARTSConfig returns the paper's SMARTS parameters at the given
// scale.
func DefaultSMARTSConfig(scale uint64) SMARTSConfig {
	return sampling.DefaultSMARTSConfig(scale)
}

// RunSMARTS runs SMARTS systematic sampling over a profile.
func RunSMARTS(p *Profile, cfg SMARTSConfig) (Result, error) {
	return sampling.SMARTS(sampling.NewProfileTarget(p), cfg)
}

// RunSMARTSOn runs SMARTS over any target.
func RunSMARTSOn(t Target, cfg SMARTSConfig) (Result, error) {
	return sampling.SMARTS(t, cfg)
}

// DefaultTurboSMARTSConfig returns the paper's TurboSMARTS setup at the
// given scale.
func DefaultTurboSMARTSConfig(scale uint64) TurboSMARTSConfig {
	return sampling.DefaultTurboSMARTSConfig(scale)
}

// RunTurboSMARTS runs TurboSMARTS random-order checkpoint sampling.
func RunTurboSMARTS(p *Profile, cfg TurboSMARTSConfig) (Result, error) {
	return sampling.TurboSMARTS(p, cfg)
}

// RunSimPoint runs offline SimPoint (k-means over interval BBVs).
func RunSimPoint(p *Profile, cfg SimPointConfig) (Result, error) {
	return sampling.SimPoint(p, cfg)
}

// SimPointSweep returns the paper's eleven SimPoint configurations.
func SimPointSweep(scale uint64) []SimPointConfig { return sampling.SimPointSweep(scale) }

// RunOnlineSimPoint runs the online SimPoint baseline.
func RunOnlineSimPoint(p *Profile, cfg OnlineSimPointConfig) (Result, error) {
	return sampling.OnlineSimPoint(p, cfg)
}

// OnlineSimPointOverall is the paper's best overall online-SimPoint
// configuration.
func OnlineSimPointOverall(scale uint64) OnlineSimPointConfig {
	return sampling.OnlineSimPointOverall(scale)
}

// StratifiedConfig parameterises the stratified-sampling baseline.
type StratifiedConfig = sampling.StratifiedConfig

// DefaultStratifiedConfig returns the Wunderlich et al. [17] stratified
// setup at the given scale.
func DefaultStratifiedConfig(scale uint64) StratifiedConfig {
	return sampling.DefaultStratifiedConfig(scale)
}

// RunStratified runs stratified small-sample simulation with oracle
// (offline) strata — the technique the paper cites as reducing SMARTS
// samples "by over forty times" when phase behaviour is known in advance.
func RunStratified(p *Profile, cfg StratifiedConfig) (Result, error) {
	return sampling.Stratified(p, cfg)
}

// RunFull runs the ground-truth full detailed simulation through the
// sampling interface; its estimate equals the profile's true IPC.
func RunFull(p *Profile) (Result, error) {
	return sampling.Full(sampling.NewProfileTarget(p), p.BBVOps)
}

// Successor techniques and signature channels (beyond the paper's
// evaluation; see DESIGN.md "Two-channel signatures").

type (
	// Channel selects the signature stream phase classification and
	// stratification run on: basic-block vectors (code addresses),
	// memory-access vectors (data addresses), or their concatenation.
	Channel = bbv.Channel
	// TwoPhaseConfig parameterises two-phase stratified sampling (2PSS).
	TwoPhaseConfig = sampling.TwoPhaseConfig
	// RankedSetConfig parameterises ranked set sampling with repeated
	// subsampling (RSS).
	RankedSetConfig = sampling.RankedSetConfig
)

// Signature channels.
const (
	// ChannelBBV classifies by basic-block vectors (the paper's channel).
	ChannelBBV = bbv.ChannelBBV
	// ChannelMAV classifies by memory-access vectors.
	ChannelMAV = bbv.ChannelMAV
	// ChannelBoth classifies by the normalised concatenation of both.
	ChannelBoth = bbv.ChannelBoth
)

// ParseChannel parses a channel name: "bbv", "mav", or "both" (aliases
// "bbv+mav", "concat").
func ParseChannel(s string) (Channel, error) { return bbv.ParseChannel(s) }

// DefaultTwoPhaseConfig returns the 2PSS setup at the given scale.
func DefaultTwoPhaseConfig(scale uint64) TwoPhaseConfig {
	return sampling.DefaultTwoPhaseConfig(scale)
}

// RunTwoPhase runs two-phase stratified sampling (2PSS) over a profile:
// phase 1 signature-classifies a random subset of intervals into strata,
// phase 2 spends the detailed budget proportionally across them.
func RunTwoPhase(p *Profile, cfg TwoPhaseConfig) (Result, error) {
	return sampling.TwoPhase(p, cfg)
}

// DefaultRankedSetConfig returns the RSS setup at the given scale.
func DefaultRankedSetConfig(scale uint64) RankedSetConfig {
	return sampling.DefaultRankedSetConfig(scale)
}

// RunRankedSet runs ranked set sampling with repeated subsampling (RSS)
// over a profile: each cycle ranks fresh random interval sets by a cheap
// signature concomitant and measures one order statistic per set.
func RunRankedSet(p *Profile, cfg RankedSetConfig) (Result, error) {
	return sampling.RankedSet(p, cfg)
}

// PGSSSweep returns the Fig 11 PGSS configuration grid at the given scale.
func PGSSSweep(scale uint64) []PGSSConfig { return core.Sweep(scale) }

// Extensions beyond the paper's evaluation (its §7 future work).

type (
	// AdaptiveConfig parameterises the runtime-adaptive PGSS variant.
	AdaptiveConfig = core.AdaptiveConfig
	// AdaptiveStats carries the adaptive controller's adjustment history.
	AdaptiveStats = core.AdaptiveStats
	// CMPConfig sizes a chip multiprocessor.
	CMPConfig = cmp.Config
	// Checkpoint is a complete simulator snapshot (live-point).
	Checkpoint = checkpoint.Checkpoint
	// CheckpointLibrary provides random access into a run via
	// checkpoints.
	CheckpointLibrary = checkpoint.Library
)

// DefaultAdaptiveConfig returns the runtime-adaptive PGSS controller at
// the given scale.
func DefaultAdaptiveConfig(scale uint64) AdaptiveConfig {
	return core.DefaultAdaptiveConfig(scale)
}

// RunAdaptivePGSS runs the runtime-adaptive PGSS variant (the paper's §7:
// parameters "automatically adjusted to each benchmark ... at runtime").
func RunAdaptivePGSS(p *Profile, cfg AdaptiveConfig) (Result, AdaptiveStats, error) {
	return core.RunAdaptive(sampling.NewProfileTarget(p), cfg)
}

// DefaultCMPConfig replicates the paper's core around one shared L2.
func DefaultCMPConfig() CMPConfig { return cmp.DefaultConfig() }

// RecordCMP co-runs one program per core on a chip multiprocessor with a
// shared L2 and returns one interference-inclusive profile per core; run
// PGSS (or any technique) per core on those profiles.
func RecordCMP(progs []*Program, cfg CMPConfig) ([]*Profile, error) {
	hash, err := bbv.NewHash(bbv.DefaultHashBits, defaultHashSeed)
	if err != nil {
		return nil, err
	}
	machine, err := cmp.New(progs, hash, cfg)
	if err != nil {
		return nil, err
	}
	return machine.Record()
}

// RecordCheckpoints runs one functional-warming pass over the program,
// capturing a live-point checkpoint every strideOps retired ops; the
// library then provides random access into the run (see Library.Seek and
// Library.SampleAt).
func RecordCheckpoints(prog *Program, cc CoreConfig, strideOps uint64) (*CheckpointLibrary, error) {
	m, err := cpu.NewMachine(prog)
	if err != nil {
		return nil, err
	}
	c, err := cpu.NewCore(m, cc)
	if err != nil {
		return nil, err
	}
	return checkpoint.Record(c, strideOps, 0)
}

// NewCheckpointWorker builds a core suitable for Library.Seek/SampleAt
// against the same program and configuration the library was recorded
// with.
func NewCheckpointWorker(prog *Program, cc CoreConfig) (*cpu.Core, error) {
	m, err := cpu.NewMachine(prog)
	if err != nil {
		return nil, err
	}
	return cpu.NewCore(m, cc)
}

// PhaseTrace is one phase's cycle-close representative trace.
type PhaseTrace = trace.PhaseTrace

// Representative policies for CapturePhaseTraces.
const (
	// RepFirst uses each phase's first occurrence (Pereira et al.; subject
	// to the warming bias the paper criticises in §3).
	RepFirst = trace.RepFirst
	// RepMedian uses the median occurrence, avoiding that bias.
	RepMedian = trace.RepMedian
)

// CapturePhaseTraces analyses the program's phases online and captures one
// cycle-close trace per phase (with its cache/predictor state), the
// Pereira-style trace bundle the paper compares PGSS against.
func CapturePhaseTraces(prog *Program, cc CoreConfig, intervalOps uint64,
	thresholdPi float64, policy trace.RepPolicy) ([]PhaseTrace, error) {
	hash, err := bbv.NewHash(bbv.DefaultHashBits, defaultHashSeed)
	if err != nil {
		return nil, err
	}
	return trace.PhaseTraces(prog, cc, hash, intervalOps, thresholdPi*math.Pi, policy)
}

// EstimateIPCFromTraces replays a phase-trace bundle through a fresh
// pipeline of the given configuration and returns the weighted IPC
// estimate.
func EstimateIPCFromTraces(traces []PhaseTrace, cc CoreConfig) (float64, error) {
	return trace.EstimateIPC(traces, cc)
}

// Fault-tolerant campaign execution (see internal/campaign): batches of
// benchmark × technique × seed runs on a worker pool with per-run panic
// recovery, retries with backoff, per-run budgets and a JSONL journal for
// kill/resume.

type (
	// CampaignSpec identifies one run of a campaign.
	CampaignSpec = campaign.Spec
	// CampaignOptions configures the campaign runner.
	CampaignOptions = campaign.Options
	// CampaignOutcome is the terminal state of one campaign run.
	CampaignOutcome = campaign.Outcome
	// CampaignReport aggregates a campaign's outcomes.
	CampaignReport = campaign.Report
	// CampaignRunFunc executes one campaign run.
	CampaignRunFunc = campaign.RunFunc
)

// CampaignGrid builds the cross product of benchmarks × techniques ×
// seeds.
func CampaignGrid(benchmarks, techniques []string, seeds []int64) []CampaignSpec {
	return campaign.Grid(benchmarks, techniques, seeds)
}

// RunCampaign executes specs through fn on a worker pool with the
// campaign runner's fault tolerance. Per-run failures land in the report;
// the returned error is reserved for campaign-level failures (an unusable
// journal).
func RunCampaign(ctx context.Context, specs []CampaignSpec, fn CampaignRunFunc, opts CampaignOptions) (*CampaignReport, error) {
	return campaign.Run(ctx, specs, fn, opts)
}
