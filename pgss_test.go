package pgss_test

import (
	"math"
	"testing"

	"pgss"
)

func record(t testing.TB, name string, ops uint64) *pgss.Profile {
	t.Helper()
	spec, err := pgss.Benchmark(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pgss.Record(spec, ops)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBenchmarksListed(t *testing.T) {
	names := pgss.Benchmarks()
	if len(names) != 11 {
		t.Errorf("benchmarks: %v", names)
	}
	if _, err := pgss.Benchmark("164.gzip"); err != nil {
		t.Fatal(err)
	}
	if _, err := pgss.Benchmark("nothing"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestQuickstartFlow(t *testing.T) {
	p := record(t, "164.gzip", 10_000_000)
	if p.TrueIPC() <= 0 {
		t.Fatal("no IPC recorded")
	}
	res, st, err := pgss.RunPGSS(p, pgss.DefaultPGSSConfig(pgss.DefaultScale))
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorPct() > 10 {
		t.Errorf("quickstart error %.2f%%", res.ErrorPct())
	}
	if st.Phases == 0 || res.Costs.DetailedTotal() == 0 {
		t.Error("degenerate run")
	}
	if res.Costs.DetailedTotal() >= p.TotalOps/5 {
		t.Error("no detail reduction")
	}
}

func TestAllTechniquesThroughFacade(t *testing.T) {
	p := record(t, "256.bzip2", 10_000_000)
	const scale = pgss.DefaultScale

	if res, err := pgss.RunFull(p); err != nil || math.Abs(res.EstimatedIPC-p.TrueIPC())/p.TrueIPC() > 1e-3 {
		t.Errorf("full: %v %v", res, err)
	}
	if res, err := pgss.RunSMARTS(p, pgss.DefaultSMARTSConfig(scale)); err != nil || res.ErrorPct() > 10 {
		t.Errorf("smarts: %v %v", res, err)
	}
	if res, err := pgss.RunTurboSMARTS(p, pgss.DefaultTurboSMARTSConfig(scale)); err != nil || res.Samples == 0 {
		t.Errorf("turbosmarts: %v %v", res, err)
	}
	if res, err := pgss.RunSimPoint(p, pgss.SimPointConfig{IntervalOps: 1_000_000, K: 5, Seed: 1}); err != nil || res.Samples == 0 {
		t.Errorf("simpoint: %v %v", res, err)
	}
	if res, err := pgss.RunOnlineSimPoint(p, pgss.OnlineSimPointConfig{IntervalOps: 1_000_000, ThresholdPi: 0.1}); err != nil || res.Phases == 0 {
		t.Errorf("onlinesimpoint: %v %v", res, err)
	}
	sweep := pgss.SimPointSweep(scale)
	if len(sweep) != 11 {
		t.Errorf("simpoint sweep: %d", len(sweep))
	}
	if len(pgss.PGSSSweep(scale)) != 15 {
		t.Error("pgss sweep size")
	}
}

func TestLiveTargetThroughFacade(t *testing.T) {
	spec, err := pgss.Benchmark("177.mesa")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := spec.Build(3_000_000)
	if err != nil {
		t.Fatal(err)
	}
	truth := record(t, "177.mesa", 3_000_000)
	target, err := pgss.NewLiveTarget(prog, pgss.DefaultCoreConfig(), truth.TrueIPC())
	if err != nil {
		t.Fatal(err)
	}
	cfg := pgss.DefaultPGSSConfig(pgss.DefaultScale)
	cfg.FFOps = 50_000
	cfg.SpreadOps = 50_000
	res, _, err := pgss.RunPGSSOn(target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorPct() > 10 {
		t.Errorf("live PGSS error %.2f%%", res.ErrorPct())
	}
}

func TestDesignSpaceRankingPreserved(t *testing.T) {
	// The designspace example's claim as a test: PGSS ranks two L2 sizes
	// the same way full simulation does.
	spec, err := pgss.Benchmark("183.equake")
	if err != nil {
		t.Fatal(err)
	}
	const ops = 8_000_000
	type design struct{ trueIPC, estIPC float64 }
	var results []design
	for _, size := range []int{128 << 10, 1 << 20} {
		cc := pgss.DefaultCoreConfig()
		cc.Hierarchy.L2.SizeBytes = size
		prof, err := pgss.RecordWithCore(spec, ops, cc)
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := pgss.RunPGSS(prof, pgss.DefaultPGSSConfig(pgss.DefaultScale))
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, design{prof.TrueIPC(), res.EstimatedIPC})
	}
	if (results[0].trueIPC < results[1].trueIPC) != (results[0].estIPC < results[1].estIPC) {
		t.Errorf("design ranking diverged: %+v", results)
	}
}

func TestRecordWithCoreRespectsConfig(t *testing.T) {
	spec, err := pgss.Benchmark("181.mcf")
	if err != nil {
		t.Fatal(err)
	}
	small := pgss.DefaultCoreConfig()
	small.Hierarchy.L2.SizeBytes = 128 << 10
	pSmall, err := pgss.RecordWithCore(spec, 3_000_000, small)
	if err != nil {
		t.Fatal(err)
	}
	pBig, err := pgss.RecordWithCore(spec, 3_000_000, pgss.DefaultCoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	// mcf is L2-sensitive: a bigger L2 must not be slower.
	if pBig.TrueIPC() < pSmall.TrueIPC()*0.98 {
		t.Errorf("bigger L2 slower: %.4f vs %.4f", pBig.TrueIPC(), pSmall.TrueIPC())
	}
}

func TestOoOModelThroughFacade(t *testing.T) {
	// Sampled simulation must work unchanged over the out-of-order core,
	// and the OoO machine must be faster on memory-parallel code.
	spec, err := pgss.Benchmark("183.equake")
	if err != nil {
		t.Fatal(err)
	}
	const ops = 12_000_000

	inorder, err := pgss.RecordWithCore(spec, ops, pgss.DefaultCoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	oooCfg := pgss.DefaultCoreConfig()
	oooCfg.Timing.Model = "ooo"
	ooo, err := pgss.RecordWithCore(spec, ops, oooCfg)
	if err != nil {
		t.Fatal(err)
	}
	if ooo.TrueIPC() <= inorder.TrueIPC() {
		t.Errorf("OoO IPC %.4f not above in-order %.4f", ooo.TrueIPC(), inorder.TrueIPC())
	}
	res, _, err := pgss.RunPGSS(ooo, pgss.DefaultPGSSConfig(pgss.DefaultScale))
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorPct() > 8 {
		t.Errorf("PGSS over OoO core: %.2f%% error", res.ErrorPct())
	}
}

func TestPhaseTracesThroughFacade(t *testing.T) {
	spec, err := pgss.Benchmark("188.ammp")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := spec.Build(3_000_000)
	if err != nil {
		t.Fatal(err)
	}
	traces, err := pgss.CapturePhaseTraces(prog, pgss.DefaultCoreConfig(), 100_000, 0.05, pgss.RepMedian)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) == 0 {
		t.Fatal("no phase traces")
	}
	est, err := pgss.EstimateIPCFromTraces(traces, pgss.DefaultCoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	truth := record(t, "188.ammp", 3_000_000)
	rel := math.Abs(est-truth.TrueIPC()) / truth.TrueIPC()
	if rel > 0.10 {
		t.Errorf("trace estimate %.4f vs truth %.4f (%.1f%%)", est, truth.TrueIPC(), rel*100)
	}
}

func TestAdaptiveThroughFacade(t *testing.T) {
	p := record(t, "164.gzip", 15_000_000)
	res, ast, err := pgss.RunAdaptivePGSS(p, pgss.DefaultAdaptiveConfig(pgss.DefaultScale))
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorPct() > 10 {
		t.Errorf("adaptive error %.2f%%", res.ErrorPct())
	}
	if ast.FinalFFOps == 0 {
		t.Error("missing final parameters")
	}
}

func TestStratifiedThroughFacade(t *testing.T) {
	p := record(t, "256.bzip2", 15_000_000)
	res, err := pgss.RunStratified(p, pgss.DefaultStratifiedConfig(pgss.DefaultScale))
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorPct() > 5 {
		t.Errorf("stratified error %.2f%%", res.ErrorPct())
	}
}

func TestCMPThroughFacade(t *testing.T) {
	build := func(name string) *pgss.Program {
		spec, err := pgss.Benchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := spec.Build(1_500_000)
		if err != nil {
			t.Fatal(err)
		}
		return prog
	}
	profs, err := pgss.RecordCMP([]*pgss.Program{build("177.mesa"), build("181.mcf")}, pgss.DefaultCMPConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(profs) != 2 || profs[0].TrueIPC() <= 0 || profs[1].TrueIPC() <= 0 {
		t.Errorf("CMP profiles wrong: %v", profs)
	}
}

func TestCheckpointsThroughFacade(t *testing.T) {
	spec, err := pgss.Benchmark("197.parser")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := spec.Build(600_000)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := pgss.RecordCheckpoints(prog, pgss.DefaultCoreConfig(), 200_000)
	if err != nil {
		t.Fatal(err)
	}
	worker, err := pgss.NewCheckpointWorker(prog, pgss.DefaultCoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	ipc, _, err := lib.SampleAt(worker, 300_000, 3000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if ipc <= 0 {
		t.Error("no sample IPC")
	}
}
