module pgss

go 1.22
